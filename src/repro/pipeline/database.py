"""SQLite experiment database (the EmbExp-Logs substitute).

Stores campaigns, generated programs, and per-experiment records so results
can be re-analysed after a run, as with the paper's artifact logs.  Uses the
standard-library ``sqlite3``; in-memory by default.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, List, Optional, Tuple

from repro.errors import PipelineError

#: Schema generation, stored in the SQLite ``user_version`` pragma.
#: Version 3 added the ``coverage`` table (per-campaign supporting-model
#: coverage summaries); version 2 added the ``experiments(outcome)`` index
#: and the ``witnesses`` table; version 0 (never stamped) is the pre-pragma
#: schema.  Older files upgrade in place because every DDL statement is
#: idempotent (``IF NOT EXISTS``).
SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS programs (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    name TEXT NOT NULL,
    template TEXT NOT NULL,
    asm TEXT NOT NULL,
    params TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS experiments (
    id INTEGER PRIMARY KEY,
    program_id INTEGER NOT NULL REFERENCES programs(id),
    outcome TEXT NOT NULL,
    state1 TEXT NOT NULL,
    state2 TEXT NOT NULL,
    train TEXT,
    gen_time REAL NOT NULL,
    exe_time REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_experiments_program
    ON experiments(program_id);
CREATE INDEX IF NOT EXISTS idx_experiments_outcome
    ON experiments(outcome);
CREATE TABLE IF NOT EXISTS witnesses (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    name TEXT NOT NULL,
    signature TEXT NOT NULL,
    doc TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_witnesses_campaign
    ON witnesses(campaign_id);
CREATE TABLE IF NOT EXISTS coverage (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    model TEXT NOT NULL,
    partitions INTEGER NOT NULL,
    space INTEGER,
    samples INTEGER NOT NULL,
    conclusive INTEGER NOT NULL,
    inconclusive INTEGER NOT NULL,
    counterexamples INTEGER NOT NULL,
    verdict TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_coverage_campaign
    ON coverage(campaign_id);
"""


def _dump_state(state) -> str:
    return json.dumps(
        {"regs": state.regs, "memory": {str(k): v for k, v in state.memory.items()}}
    )


class ExperimentDatabase:
    """Thin typed wrapper over the sqlite3 store."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path)
        # Daemon-era access pattern: a status/results reader may open the
        # file while a job is writing.  WAL keeps readers unblocked by the
        # writer (and vice versa); the busy timeout makes the rare
        # writer-vs-writer collision wait instead of raising "database is
        # locked".  WAL is meaningless for in-memory databases.
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        stored = self.schema_version
        if stored > SCHEMA_VERSION:
            self._conn.close()
            raise PipelineError(
                f"database {path!r} has schema version {stored}; "
                f"this build reads up to {SCHEMA_VERSION}"
            )
        self._conn.executescript(_SCHEMA)
        self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        self._conn.commit()

    @property
    def schema_version(self) -> int:
        """The ``user_version`` pragma stamped into the file."""
        row = self._conn.execute("PRAGMA user_version").fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- inserts -------------------------------------------------------------

    def add_campaign(self, name: str, description: str = "") -> int:
        cur = self._conn.execute(
            "INSERT INTO campaigns (name, description) VALUES (?, ?)",
            (name, description),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def add_program(
        self,
        campaign_id: int,
        name: str,
        template: str,
        asm_text: str,
        params: Optional[Dict] = None,
    ) -> int:
        cur = self._conn.execute(
            "INSERT INTO programs (campaign_id, name, template, asm, params)"
            " VALUES (?, ?, ?, ?, ?)",
            (campaign_id, name, template, asm_text, json.dumps(params or {})),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def add_experiment(
        self,
        program_id: int,
        outcome: str,
        state1,
        state2,
        train,
        gen_time: float,
        exe_time: float,
    ) -> int:
        cur = self._conn.execute(
            "INSERT INTO experiments"
            " (program_id, outcome, state1, state2, train, gen_time, exe_time)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                program_id,
                outcome,
                _dump_state(state1),
                _dump_state(state2),
                _dump_state(train) if train is not None else None,
                gen_time,
                exe_time,
            ),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def add_witness(
        self, campaign_id: int, name: str, signature: str, doc: str
    ) -> int:
        """Insert one triaged witness (``doc`` is its JSON document)."""
        cur = self._conn.execute(
            "INSERT INTO witnesses (campaign_id, name, signature, doc)"
            " VALUES (?, ?, ?, ?)",
            (campaign_id, name, signature, doc),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def add_coverage_summary(
        self,
        campaign_id: int,
        model: str,
        partitions: int,
        space: Optional[int],
        samples: int,
        conclusive: int,
        inconclusive: int,
        counterexamples: int,
        verdict: str,
    ) -> int:
        """Insert one supporting model's coverage summary for a campaign."""
        cur = self._conn.execute(
            "INSERT INTO coverage"
            " (campaign_id, model, partitions, space, samples,"
            "  conclusive, inconclusive, counterexamples, verdict)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                campaign_id,
                model,
                partitions,
                space,
                samples,
                conclusive,
                inconclusive,
                counterexamples,
                verdict,
            ),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def record_coverage(self, campaign_id: int, ledger_doc: Dict) -> None:
        """Persist every model summary of a merged coverage ledger (JSON
        form, see :meth:`repro.monitor.ledger.CoverageLedger.to_json`)."""
        from repro.monitor.ledger import CoverageLedger

        ledger = CoverageLedger.from_json(ledger_doc)
        for model, cov in sorted(ledger.convergence().items()):
            self.add_coverage_summary(
                campaign_id,
                model,
                partitions=cov.partitions,
                space=cov.space,
                samples=cov.samples,
                conclusive=cov.conclusive,
                inconclusive=cov.inconclusive,
                counterexamples=cov.counterexamples,
                verdict=cov.verdict,
            )

    # -- queries -------------------------------------------------------------

    def outcome_counts(self, campaign_id: int) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT e.outcome, COUNT(*) FROM experiments e"
            " JOIN programs p ON e.program_id = p.id"
            " WHERE p.campaign_id = ? GROUP BY e.outcome",
            (campaign_id,),
        ).fetchall()
        return {outcome: count for outcome, count in rows}

    def programs_with_outcome(self, campaign_id: int, outcome: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(DISTINCT e.program_id) FROM experiments e"
            " JOIN programs p ON e.program_id = p.id"
            " WHERE p.campaign_id = ? AND e.outcome = ?",
            (campaign_id, outcome),
        ).fetchone()
        return int(row[0])

    def counterexamples(self, campaign_id: int) -> List[Tuple[str, str, str]]:
        """``(program_name, state1_json, state2_json)`` of counterexamples.

        Served by ``idx_experiments_outcome`` + ``idx_experiments_program``
        rather than a full scan; rows come back in insertion order, which
        is program order for a deterministically recorded campaign.
        """
        return self._conn.execute(
            "SELECT p.name, e.state1, e.state2 FROM experiments e"
            " JOIN programs p ON e.program_id = p.id"
            " WHERE p.campaign_id = ? AND e.outcome = 'counterexample'"
            " ORDER BY e.id",
            (campaign_id,),
        ).fetchall()

    def witnesses(self, campaign_id: int) -> List[Tuple[str, str, str]]:
        """``(name, signature, doc_json)`` of a campaign's witnesses."""
        return self._conn.execute(
            "SELECT name, signature, doc FROM witnesses"
            " WHERE campaign_id = ? ORDER BY name",
            (campaign_id,),
        ).fetchall()

    def coverage_summary(
        self, campaign_id: int
    ) -> List[Tuple[str, int, Optional[int], int, int, int, int, str]]:
        """``(model, partitions, space, samples, conclusive, inconclusive,
        counterexamples, verdict)`` rows for a campaign, ordered by model
        name so output is deterministic regardless of insertion history."""
        return self._conn.execute(
            "SELECT model, partitions, space, samples, conclusive,"
            " inconclusive, counterexamples, verdict FROM coverage"
            " WHERE campaign_id = ? ORDER BY model",
            (campaign_id,),
        ).fetchall()

    def experiment_count(self, campaign_id: int) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM experiments e"
            " JOIN programs p ON e.program_id = p.id WHERE p.campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        return int(row[0])
