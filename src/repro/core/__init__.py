"""The paper's primary contribution: relation synthesis with observation
refinement (§3, §5.2), coverage via supporting models (§4.1), and test-case
generation.

The flow for one program (Fig. 1):

1. the observation model augments the lifted BIR program (``repro.obs``),
2. symbolic execution enumerates paths and observation lists
   (``repro.symbolic``),
3. :class:`~repro.core.relation.RelationSynthesizer` builds, per pair of
   paths (§5.4), the constraints "base observations equal" and — under
   refinement — "refined observations different",
4. :class:`~repro.core.testgen.TestCaseGenerator` adds well-formedness and
   coverage constraints and asks the model finder for a pair of input
   states, plus a branch-predictor training state (§5.3).
"""

from repro.core.rename import rename_expr, rename_observation
from repro.core.relation import PairRelation, RelationSynthesizer
from repro.core.coverage import CoverageSampler, MlineCoverage, NoCoverage
from repro.core.probes import add_address_probes
from repro.core.testgen import TestCase, TestCaseGenerator, TestGenConfig
from repro.core.repair import ModelRepairer, PromotedModel, RepairReport

__all__ = [
    "rename_expr",
    "rename_observation",
    "PairRelation",
    "RelationSynthesizer",
    "CoverageSampler",
    "MlineCoverage",
    "NoCoverage",
    "add_address_probes",
    "TestCase",
    "TestCaseGenerator",
    "TestGenConfig",
    "ModelRepairer",
    "PromotedModel",
    "RepairReport",
]
