"""Observational-equivalence relation synthesis (§2.3, Eq. 1) with the
per-path-pair split (§5.4) and refinement (§3).

For a chosen pair of symbolic paths (σ1, σ2) a :class:`PairRelation` holds

* the *antecedent* — both path conditions, renamed into the two-state
  namespace (asserting it selects this conjunct of Eq. 1);
* the *base equalities* — ``l_σ1(s1) = l_σ2(s2)`` restricted to BASE
  observations: per position, guards must agree and, when the guard holds,
  the observed values must agree;
* the *refined difference* — the negation of refined-observation equality
  (``s1 !~M2 s2`` given ``s1 ~M1 s2``): some refined position where guards
  disagree or both guards hold and a value differs.

A pair with mismatching BASE observation shapes (lengths, kinds, or
constant values such as program counters) is *statically infeasible*: those
conjuncts of Eq. 1 are the "trivially false" cases of §2.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.bir import expr as E
from repro.bir.simp import simplify
from repro.bir.tags import ObsTag
from repro.core.rename import rename_expr, rename_observation
from repro.symbolic.path import (
    SymbolicExecutionResult,
    SymbolicObservation,
)


@dataclass(frozen=True)
class PairRelation:
    """The relation restricted to one pair of execution paths."""

    path1_index: int
    path2_index: int
    antecedent: Tuple[E.Expr, ...]
    base_equalities: Tuple[E.Expr, ...]
    refined_difference: Optional[E.Expr]
    statically_infeasible: bool = False

    def equivalence_constraints(self) -> Tuple[E.Expr, ...]:
        """Constraints for ``s1 ~M1 s2`` on this path pair."""
        return self.antecedent + self.base_equalities

    def refinement_constraints(self) -> Tuple[E.Expr, ...]:
        """Constraints for ``s1 ~M1 s2  and  s1 !~M2 s2`` (§3 step 4)."""
        if self.refined_difference is None:
            return self.equivalence_constraints()
        return self.equivalence_constraints() + (self.refined_difference,)

    @property
    def usable_for_refinement(self) -> bool:
        """False when no refined observation can possibly differ here."""
        return (
            not self.statically_infeasible
            and self.refined_difference is not None
            and self.refined_difference != E.FALSE
        )


class RelationSynthesizer:
    """Builds pair relations — and the full Eq. 1 formula — for a symbolic
    execution result.

    The per-path renamed artefacts (path-condition conjuncts, base and
    refined observation lists for each state copy) are computed once per
    ``(path, state)`` and reused across the O(n²) pairs; with hash-consed
    expressions and the rename memo, building all pair relations is linear
    in the number of *distinct* renamed terms.
    """

    def __init__(self, result: SymbolicExecutionResult, refinement: bool):
        self.result = result
        self.refinement = refinement
        # (path_index, state_index) -> renamed artefacts.
        self._antecedents: dict = {}
        self._base_obs: dict = {}
        self._refined_obs: dict = {}

    def _antecedent(self, path_index: int, state_index: int):
        key = (path_index, state_index)
        cached = self._antecedents.get(key)
        if cached is None:
            cached = tuple(
                rename_expr(c, state_index)
                for c in self.result[path_index].path_condition
            )
            self._antecedents[key] = cached
        return cached

    def _base(self, path_index: int, state_index: int):
        key = (path_index, state_index)
        cached = self._base_obs.get(key)
        if cached is None:
            cached = _renamed(
                self.result[path_index].base_observations(), state_index
            )
            self._base_obs[key] = cached
        return cached

    def _refined(self, path_index: int, state_index: int):
        key = (path_index, state_index)
        cached = self._refined_obs.get(key)
        if cached is None:
            cached = _renamed(
                self.result[path_index].refined_only_observations(), state_index
            )
            self._refined_obs[key] = cached
        return cached

    # -- per-pair (§5.4) -----------------------------------------------------

    def pair(self, i: int, j: int) -> PairRelation:
        antecedent = self._antecedent(i, 1) + self._antecedent(j, 2)

        base1 = self._base(i, 1)
        base2 = self._base(j, 2)
        base_eqs, feasible = _observation_equalities(base1, base2)
        if not feasible:
            return PairRelation(
                i, j, antecedent, tuple(base_eqs), None, statically_infeasible=True
            )

        refined_diff: Optional[E.Expr] = None
        if self.refinement:
            ref1 = self._refined(i, 1)
            ref2 = self._refined(j, 2)
            refined_diff = _observation_difference(ref1, ref2)

        return PairRelation(i, j, antecedent, tuple(base_eqs), refined_diff)

    def all_pairs(self) -> Iterator[PairRelation]:
        """Every (i, j) pair with i <= j, in round-robin-friendly order."""
        n = len(self.result)
        for i in range(n):
            for j in range(i, n):
                yield self.pair(i, j)

    def feasible_pairs(self) -> List[PairRelation]:
        return [p for p in self.all_pairs() if not p.statically_infeasible]

    # -- the monolithic Eq. 1 relation (naive form, used by the ablation) ----

    def synthesize_full(self) -> E.Expr:
        """The whole ``s1 ~M1 s2`` formula of Eq. 1 as one expression."""
        conjuncts: List[E.Expr] = []
        for pair in self.all_pairs():
            antecedent = E.bool_and(*pair.antecedent)
            if pair.statically_infeasible:
                consequent: E.Expr = E.FALSE
            else:
                consequent = E.bool_and(*pair.base_equalities)
            conjuncts.append(simplify(E.bool_or(E.bool_not(antecedent), consequent)))
            if pair.path1_index != pair.path2_index:
                # Eq. 1 quantifies over ordered pairs; mirror the conjunct.
                mirrored = self.pair(pair.path2_index, pair.path1_index)
                antecedent = E.bool_and(*mirrored.antecedent)
                consequent = (
                    E.FALSE
                    if mirrored.statically_infeasible
                    else E.bool_and(*mirrored.base_equalities)
                )
                conjuncts.append(
                    simplify(E.bool_or(E.bool_not(antecedent), consequent))
                )
        return E.bool_and(*conjuncts)


def _renamed(
    observations: Sequence[SymbolicObservation], state_index: int
) -> List[SymbolicObservation]:
    return [rename_observation(o, state_index) for o in observations]


def _observation_equalities(
    obs1: Sequence[SymbolicObservation], obs2: Sequence[SymbolicObservation]
) -> Tuple[List[E.Expr], bool]:
    """Positional equality of two observation lists.

    Returns ``(constraints, feasible)``; infeasible when lengths or kinds
    mismatch or an equality simplifies to false (constant observations such
    as program counters from different paths).
    """
    if len(obs1) != len(obs2):
        return [], False
    constraints: List[E.Expr] = []
    for o1, o2 in zip(obs1, obs2):
        if o1.kind is not o2.kind or len(o1.exprs) != len(o2.exprs):
            return [], False
        guard_eq = simplify(E.eq(o1.guard, o2.guard))
        if guard_eq == E.FALSE:
            return [], False
        if guard_eq != E.TRUE:
            constraints.append(guard_eq)
        values_eq = E.bool_and(
            *(E.eq(e1, e2) for e1, e2 in zip(o1.exprs, o2.exprs))
        )
        guarded = simplify(_guarded(o1.guard, values_eq))
        if guarded == E.FALSE:
            return [], False
        if guarded != E.TRUE:
            constraints.append(guarded)
    return constraints, True


def _observation_difference(
    obs1: Sequence[SymbolicObservation], obs2: Sequence[SymbolicObservation]
) -> E.Expr:
    """The negation of refined-observation-list equality.

    Shape mismatch means the lists always differ (TRUE); otherwise a
    disjunction over positions of "guards disagree or both hold and some
    value differs".  FALSE when there are no refined observations at all.
    """
    if len(obs1) != len(obs2):
        return E.TRUE
    for o1, o2 in zip(obs1, obs2):
        if o1.kind is not o2.kind or len(o1.exprs) != len(o2.exprs):
            return E.TRUE
    disjuncts: List[E.Expr] = []
    for o1, o2 in zip(obs1, obs2):
        guard_diff = simplify(E.ne(o1.guard, o2.guard))
        values_diff = E.bool_or(
            *(E.ne(e1, e2) for e1, e2 in zip(o1.exprs, o2.exprs))
        )
        both_hold = E.bool_and(o1.guard, o2.guard, values_diff)
        disjuncts.append(simplify(E.bool_or(guard_diff, both_hold)))
    return simplify(E.bool_or(*disjuncts))


def _guarded(guard: E.Expr, body: E.Expr) -> E.Expr:
    """``guard implies body`` (the lists agree where the guard holds)."""
    if guard == E.TRUE:
        return body
    return E.bool_or(E.bool_not(guard), body)
