"""Automatic observation-model repair (§8 future work).

The paper's concluding remarks propose "techniques to refine unsound
observation models to automatically restore their soundness, e.g., by
adding state observations".  This module implements that loop for
refinement-carrying models:

1. validate the model under refinement guidance (a Scam-V campaign);
2. if counterexamples appear, *promote* the refined observations into the
   model under validation — the refined observations are precisely the
   extra state the counterexamples showed to leak;
3. re-validate the strengthened model; repeat until no counterexamples
   remain (or the iteration budget runs out).

Promotion is sound by construction — the promoted model is more
restrictive (``~M2 ⊆ ~M1``, §3) — but possibly coarser than necessary;
the loop reports how many promotions were needed so a model designer can
inspect what was missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional

from repro.bir.program import Block, Program
from repro.bir.stmt import Observe
from repro.bir.tags import ObsTag
from repro.obs.base import ObservationModel, map_block_bodies

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle with
    # repro.pipeline, which itself builds on repro.core)
    from repro.pipeline.config import CampaignConfig
    from repro.pipeline.metrics import CampaignStats


class PromotedModel(ObservationModel):
    """A model with its refined observations promoted into the base.

    The wrapped model's REFINED observations become BASE: the promoted
    model *observes* the state that the counterexamples leaked, so the
    equivalence relation now forces it equal across test pairs.  The
    promoted model carries no refinement of its own (its refinement was
    consumed by the promotion).
    """

    has_refinement = False

    def __init__(self, inner: ObservationModel):
        self.inner = inner
        self.name = f"{inner.name} (promoted)"

    def augment(self, program: Program) -> Program:
        augmented = self.inner.augment(program)

        def rewrite(block: Block):
            for stmt in block.body:
                if isinstance(stmt, Observe) and stmt.tag is ObsTag.REFINED:
                    yield Observe(
                        ObsTag.BASE, stmt.kind, stmt.exprs, stmt.guard, stmt.label
                    )
                else:
                    yield stmt

        return map_block_bodies(augmented, rewrite)


@dataclass
class RepairStep:
    """One iteration of the repair loop."""

    model_name: str
    stats: "CampaignStats"

    @property
    def sound_so_far(self) -> bool:
        return self.stats.counterexamples == 0


@dataclass
class RepairReport:
    """Outcome of a repair loop."""

    steps: List[RepairStep] = field(default_factory=list)
    repaired_model: Optional[ObservationModel] = None

    @property
    def succeeded(self) -> bool:
        return bool(self.steps) and self.steps[-1].sound_so_far

    @property
    def promotions(self) -> int:
        return max(0, len(self.steps) - 1)

    def describe(self) -> str:
        lines = ["model repair:"]
        for index, step in enumerate(self.steps):
            verdict = (
                "no counterexamples"
                if step.sound_so_far
                else f"{step.stats.counterexamples} counterexamples"
            )
            lines.append(f"  step {index}: {step.model_name} -> {verdict}")
        lines.append(
            "  result: "
            + (
                f"repaired after {self.promotions} promotion(s)"
                if self.succeeded
                else "not repaired within budget"
            )
        )
        return "\n".join(lines)


class ModelRepairer:
    """Runs the validate -> promote -> re-validate loop on a campaign.

    ``campaign`` describes the validation setting (template, sizes,
    platform); its model must carry a refinement, which supplies both the
    search guidance and the observations available for promotion.
    """

    def __init__(self, campaign: "CampaignConfig", max_promotions: int = 2):
        self.campaign = campaign
        self.max_promotions = max_promotions

    def repair(self) -> RepairReport:
        from repro.pipeline.driver import ScamV  # deferred: avoids a cycle

        report = RepairReport()
        model = self.campaign.model
        for round_index in range(self.max_promotions + 1):
            config = replace(
                self.campaign,
                model=model,
                name=f"{self.campaign.name} [repair {round_index}]",
                seed=self.campaign.seed + round_index,
            )
            stats = ScamV(config).run().stats
            report.steps.append(RepairStep(model.name, stats))
            if stats.counterexamples == 0:
                report.repaired_model = model
                return report
            if not getattr(model, "has_refinement", False):
                # Nothing left to promote: repair failed.
                return report
            model = PromotedModel(model)
        return report
