"""Test-case generation: from a template program to a pair of input states.

Implements steps (2)-(4) of Fig. 1 for one program: symbolic execution runs
**once** per program (its result is cached on the generator, §5), relation
synthesis produces per-path-pair constraints (§5.4), and the model finder
instantiates them into two concrete states — plus a branch-predictor
training state on a different path (§5.3).

Well-formedness constraints keep every accessed address (architectural and
transient) inside the platform's experiment memory region and 8-byte
aligned, mirroring how Scam-V constrains experiments to runnable memory.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bir import expr as E
from repro.core.coverage import CoverageSampler, NoCoverage
from repro.core.probes import add_address_probes, probe_addresses
from repro.core.relation import PairRelation, RelationSynthesizer
from repro.core.rename import rename_expr
from repro.errors import GeneratorError
from repro.hw.platform import StateInputs
from repro.isa.lifter import lift
from repro.isa.program import AsmProgram
from repro.obs.base import ObservationModel
from repro.bir import intern
from repro.smt.naming import rename_for_state
from repro.smt.solver import (
    Model,
    ModelFinder,
    PreparedConstraints,
    SolverConfig,
)
from repro.symbolic.executor import execute
from repro.telemetry import solver as solver_profile
from repro.telemetry.trace import span as tspan
from repro.utils.rng import SplittableRandom

_REGISTER_NAME = re.compile(r"^x\d+$")

# Prepared-constraint reuse accounting across all generators.  The caches
# themselves are per-generator (they die with the generator), so the clear
# hook and size probe are no-ops; only the hit/miss counters are global.
_PREP_STATS = intern.register_cache("prepare", lambda: None, lambda: 0)


@dataclass(frozen=True)
class TestGenConfig:
    """Test generation parameters (shared with the solver's value domain)."""

    region_base: int = 0x80000
    region_size: int = 0x40000
    alignment: int = 8
    max_pair_attempts: int = 12
    max_paths: int = 64
    solver: SolverConfig = field(default_factory=SolverConfig)

    def __post_init__(self):
        solver = SolverConfig(
            max_restarts=self.solver.max_restarts,
            max_repairs=self.solver.max_repairs,
            stall_limit=self.solver.stall_limit,
            divergence=self.solver.divergence,
            region_base=self.region_base,
            region_size=self.region_size,
            region_bias=self.solver.region_bias,
            alignment=self.alignment,
            warm_restarts=self.solver.warm_restarts,
        )
        object.__setattr__(self, "solver", solver)


@dataclass
class TestCase:
    """A generated experiment: one program, two states, optional training."""

    program: AsmProgram
    state1: StateInputs
    state2: StateInputs
    train: Optional[StateInputs]
    pair: Tuple[int, int]
    refined: bool  # generated under the refinement constraint


class TestCaseGenerator:
    """Generates test cases for one program under one observation model."""

    def __init__(
        self,
        asm: AsmProgram,
        model: ObservationModel,
        config: Optional[TestGenConfig] = None,
        rng: Optional[SplittableRandom] = None,
        coverage: Optional[CoverageSampler] = None,
    ):
        self.asm = asm
        self.model = model
        self.config = config or TestGenConfig()
        self.rng = rng or SplittableRandom(0)
        self.coverage = coverage or NoCoverage()

        with tspan("obs.augment", program=asm.name, model=model.name):
            bir = lift(asm)
            augmented = add_address_probes(model.augment(bir))
        #: The augmented BIR program (exposed for certification/analysis).
        self.augmented = augmented
        # Symbolic execution runs once per program; later phases reuse it.
        # (The executor opens its own ``symbolic.execute`` span.)
        self.result = execute(augmented, max_paths=self.config.max_paths)
        with tspan("relation.synthesize", program=asm.name) as s:
            self.synthesizer = RelationSynthesizer(
                self.result, model.has_refinement
            )
            feasible = self.synthesizer.feasible_pairs()
            s.set_attr("pairs", len(feasible))
        if model.has_refinement:
            usable = [p for p in feasible if p.usable_for_refinement]
            # When no pair has refined observations that can differ, the
            # refinement adds nothing for this program; fall back to plain
            # equivalence so experiments still run (they then cannot exceed
            # what unguided testing would find).
            self._pairs = usable or feasible
            self._refined_mode = bool(usable)
        else:
            self._pairs = feasible
            self._refined_mode = False
        self._round_robin = 0
        self._train_cache: Dict[int, Optional[StateInputs]] = {}
        self._wellformed_cache: Dict[Tuple[int, int], List[E.Expr]] = {}
        # The pair relation + well-formedness part of an attempt's
        # constraints is fixed per path pair; only the coverage constraints
        # change between attempts.  Prepare (flatten/propagate/compile)
        # once per pair and solve with the coverage extras per attempt.
        self._prepared_cache: Dict[Tuple[int, int], PreparedConstraints] = {}
        self._preparer = ModelFinder(self.config.solver)

    # -- public API ----------------------------------------------------------

    @property
    def path_count(self) -> int:
        return len(self.result)

    def generate(self) -> Optional[TestCase]:
        """Produce the next test case, or None if generation keeps failing."""
        if not self._pairs:
            return None
        for _ in range(self.config.max_pair_attempts):
            pair = self._pairs[self._round_robin % len(self._pairs)]
            self._round_robin += 1
            test = self._instantiate(pair)
            if test is not None:
                return test
        return None

    # -- internals -----------------------------------------------------------

    def _instantiate(self, pair: PairRelation) -> Optional[TestCase]:
        prepared, prepared_hit = self._prepared(pair)
        coverage = self.coverage.constraints(
            pair, self.result, self.rng.split("coverage")
        )
        finder = ModelFinder(self.config.solver, self.rng.split("solve"))
        # Attribute the query to the ledger's coverage-class key for this
        # pair so the solver observatory can say which class eats the time.
        with solver_profile.query_context(
            "testgen.generate",
            f"pair:{pair.path1_index}-{pair.path2_index}",
            prepared_hit=prepared_hit,
        ):
            model = finder.solve_prepared(prepared, extra=coverage)
        if model is None:
            return None
        state1 = self._state_inputs(model, 1)
        state2 = self._state_inputs(model, 2)
        train = self._training_state(pair.path1_index)
        return TestCase(
            program=self.asm,
            state1=state1,
            state2=state2,
            train=train,
            pair=(pair.path1_index, pair.path2_index),
            refined=self._refined_mode,
        )

    def _prepared(
        self, pair: PairRelation
    ) -> Tuple[PreparedConstraints, bool]:
        """The prepared constraints for a pair, plus whether the prepared
        cache supplied them (the solver profiler records the flag)."""
        key = (pair.path1_index, pair.path2_index)
        prepared = self._prepared_cache.get(key)
        if prepared is not None:
            _PREP_STATS.hits += 1
            return prepared, True
        _PREP_STATS.misses += 1
        with tspan("smt.prepare", pair=list(key)) as s:
            if self._refined_mode:
                constraints = list(pair.refinement_constraints())
            else:
                constraints = list(pair.equivalence_constraints())
            constraints += self._wellformed(pair.path1_index, 1)
            constraints += self._wellformed(pair.path2_index, 2)
            prepared = self._preparer.prepare(constraints)
            s.set_attr("constraints", len(constraints))
        if intern.enabled():
            self._prepared_cache[key] = prepared
        return prepared, False

    def _wellformed(self, path_index: int, state_index: int) -> List[E.Expr]:
        key = (path_index, state_index)
        cached = self._wellformed_cache.get(key)
        if cached is not None:
            return cached
        cfg = self.config
        lo = E.const(cfg.region_base)
        hi = E.const(cfg.region_base + cfg.region_size - cfg.alignment)
        align_mask = E.const(cfg.alignment - 1)
        out: List[E.Expr] = []
        for addr in probe_addresses(self.result[path_index]):
            renamed = rename_expr(addr, state_index)
            out.append(E.ule(lo, renamed))
            out.append(E.ule(renamed, hi))
            out.append(E.eq(E.band(renamed, align_mask), E.const(0)))
        self._wellformed_cache[key] = out
        return out

    def _state_inputs(self, model: Model, state_index: int) -> StateInputs:
        regs: Dict[str, int] = {}
        for reg in self.asm.input_registers():
            regs[reg.name] = model.register(
                rename_for_state(reg.name, state_index)
            )
        memory = {
            addr: value
            for addr, value in model.memory(
                rename_for_state("MEM", state_index)
            ).items()
        }
        return StateInputs(regs=regs, memory=memory)

    def _training_state(self, measured_path: int) -> Optional[StateInputs]:
        """A state driving a path with a different branch history (§5.3)."""
        target = self._divergent_path(measured_path)
        if target is None:
            return None
        if target in self._train_cache:
            return self._train_cache[target]
        constraints = [
            rename_expr(c, 1) for c in self.result[target].path_condition
        ]
        constraints += self._wellformed(target, 1)
        finder = ModelFinder(self.config.solver, self.rng.split("train"))
        with solver_profile.query_context(
            "testgen.train", f"train:{target}", prepared_hit=False
        ):
            model = finder.solve(constraints)
        train = self._state_inputs(model, 1) if model is not None else None
        self._train_cache[target] = train
        return train

    def _divergent_path(self, measured_path: int) -> Optional[int]:
        measured_trace = self.result[measured_path].block_trace
        for index, path in enumerate(self.result):
            if path.block_trace != measured_trace:
                return index
        return None
