"""Pipeline-internal address probes.

Well-formedness (every accessed address must lie inside the experiment
memory region, aligned) and cache-line coverage both need the address of
*every* memory access along a path — including accesses the model under
validation does not observe (Mpart ignores non-attacker accesses; Mct on a
transient path observes nothing).  ``add_address_probes`` inserts
``PROBE``-tagged observations for every load and store, architectural and
transient; relation synthesis ignores the PROBE tag, and the test generator
reads the probes off the symbolic paths.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Observe
from repro.bir.tags import ObsKind, ObsTag
from repro.obs.base import is_transient, load_address, map_block_bodies, store_address
from repro.symbolic.path import SymbolicObservation, SymbolicPath


def add_address_probes(program: Program) -> Program:
    """Insert a PROBE observation before every load and store."""

    def rewrite(block: Block):
        for stmt in block.body:
            addr = load_address(stmt)
            kind = ObsKind.SPEC_LOAD_ADDR if is_transient(stmt) else ObsKind.LOAD_ADDR
            if addr is None:
                addr = store_address(stmt)
                kind = ObsKind.STORE_ADDR
            if addr is not None:
                yield Observe(
                    tag=ObsTag.PROBE,
                    kind=kind,
                    exprs=(addr,),
                    label="probe",
                )
            yield stmt

    return map_block_bodies(program, rewrite)


def probe_observations(path: SymbolicPath) -> Tuple[SymbolicObservation, ...]:
    """All PROBE observations of a path (every accessed address)."""
    return path.observations_with_tag(ObsTag.PROBE)


def probe_addresses(path: SymbolicPath) -> Iterator[E.Expr]:
    """The address expressions of a path's probes, in program order."""
    for obs in probe_observations(path):
        yield obs.exprs[0]


def architectural_probe_addresses(path: SymbolicPath) -> Iterator[E.Expr]:
    """Probe addresses of architectural (non-transient) accesses only."""
    for obs in probe_observations(path):
        if obs.kind is not ObsKind.SPEC_LOAD_ADDR:
            yield obs.exprs[0]
