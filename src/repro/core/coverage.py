"""Coverage via supporting observational models (§4.1).

Supporting models induce coarse, enumerable partitions of the input space;
taking successive test cases from different partitions systematically
explores the space.  Path coverage (Mpc, §4.1.1) is built into the
per-path-pair round-robin of the test generator; this module adds
cache-line coverage (Mline, §4.1.2): each test case pins the cache set
index of an accessed address to an enumerated/sampled class, independently
for the two states.

With 128 sets and n accesses the class space is 128^(2n); like Scam-V's
round-robin over a space too large to exhaust, we enumerate classes in a
pseudo-random order (uniform sampling without bookkeeping), which is what
matters for search guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bir import expr as E
from repro.core.probes import architectural_probe_addresses
from repro.core.rename import rename_expr
from repro.core.relation import PairRelation
from repro.obs.base import AttackerRegion
from repro.symbolic.path import SymbolicExecutionResult
from repro.utils.rng import SplittableRandom


class CoverageSampler:
    """Interface: extra constraints steering one test case's generation.

    Besides steering (:meth:`constraints`), every sampler can *classify* a
    finished test case back into the partitions of its supporting models
    (:meth:`classify`): the coverage ledger (:mod:`repro.monitor.ledger`)
    is fed from the same code that steers generation, so what the monitor
    reports as "covered" is exactly what the search considers a class.
    """

    name: str = "none"

    def constraints(
        self,
        pair: PairRelation,
        result: SymbolicExecutionResult,
        rng: SplittableRandom,
    ) -> List[E.Expr]:
        raise NotImplementedError

    def classify(self, test) -> Dict[str, Tuple[str, ...]]:
        """Partition keys a generated test case exercised, per model.

        ``test`` is a :class:`~repro.core.testgen.TestCase`.  The base
        classification every sampler shares is the Mpc path-pair partition
        (the built-in round-robin of the generator); subclasses add their
        own model's classes.  Must be a pure function of the test case —
        the ledger relies on that for worker-count-invariant merges.
        """
        p1, p2 = test.pair
        return {"Mpc": (f"pair:{p1}-{p2}",)}

    def spaces(self) -> Dict[str, Optional[int]]:
        """Enumerable partition-space sizes per model (None = unbounded).

        The Mpc path-pair space is program-dependent, so it reports None;
        enumerable supporting models (Mline set classes, magnitude chunks)
        report their class count so coverage can render as a percentage.
        """
        return {"Mpc": None}


@dataclass
class MagnitudeCoverage(CoverageSampler):
    """Operand-magnitude classes — the §3 running example.

    The paper's example support model "observes the highest two bits of x1
    ... for checking if time needed for additions depends on the size of
    the arguments", repartitioning a class into ``2^16*i`` magnitude
    ranges.  This sampler pins the first variable-latency operand of each
    state into one of four 16-bit-chunk classes, matching the simulated
    early-termination multiplier.
    """

    chunks: int = 4
    chunk_bits: int = 16

    def __post_init__(self):
        self.name = "Mpc&Mmagnitude"

    def constraints(
        self,
        pair: PairRelation,
        result: SymbolicExecutionResult,
        rng: SplittableRandom,
    ) -> List[E.Expr]:
        from repro.bir.tags import ObsKind

        out: List[E.Expr] = []
        for state_index, path_index in (
            (1, pair.path1_index),
            (2, pair.path2_index),
        ):
            path = result[path_index]
            operands = [
                o.exprs[0]
                for o in path.observations
                if o.kind is ObsKind.OPERAND
            ]
            if not operands:
                continue
            operand = rename_expr(operands[0], state_index)
            klass = rng.randint(0, self.chunks - 1)
            upper = 1 << (self.chunk_bits * (klass + 1))
            if klass + 1 < self.chunks:
                out.append(E.ult(operand, E.const(upper, operand.width)))
            if klass > 0:
                lower = 1 << (self.chunk_bits * klass)
                out.append(E.ule(E.const(lower, operand.width), operand))
        return out

    def classify(self, test) -> Dict[str, Tuple[str, ...]]:
        out = CoverageSampler.classify(self, test)
        keys = []
        for state in (test.state1, test.state2):
            if state is None or not state.regs:
                continue
            widest = max(state.regs.values())
            klass = min(
                self.chunks - 1,
                max(0, widest.bit_length() - 1) // self.chunk_bits,
            )
            keys.append(f"chunk:{klass}")
        if keys:
            out["Mmagnitude"] = tuple(keys)
        return out

    def spaces(self) -> Dict[str, Optional[int]]:
        out = CoverageSampler.spaces(self)
        out["Mmagnitude"] = self.chunks
        return out


class NoCoverage(CoverageSampler):
    """Path coverage only (the built-in Mpc round-robin)."""

    name = "Mpc"

    def constraints(self, pair, result, rng) -> List[E.Expr]:
        return []


@dataclass
class MlineCoverage(CoverageSampler):
    """Mline (§4.1.2): pin the set index of the anchor access of each state.

    Only the *first* architectural access is pinned: the templates' accesses
    are base+stride chains, so one anchor determines the rest and pinning
    several would often be unsatisfiable.
    """

    region: AttackerRegion

    def __post_init__(self):
        self.name = "Mpc&Mline"

    def constraints(
        self,
        pair: PairRelation,
        result: SymbolicExecutionResult,
        rng: SplittableRandom,
    ) -> List[E.Expr]:
        out: List[E.Expr] = []
        for state_index, path_index in (
            (1, pair.path1_index),
            (2, pair.path2_index),
        ):
            path = result[path_index]
            addresses = list(architectural_probe_addresses(path))
            if not addresses:
                continue
            anchor = rename_expr(addresses[0], state_index)
            target_line = rng.randint(0, self.region.set_count - 1)
            out.append(
                E.eq(
                    self.region.line_expr(anchor),
                    E.const(target_line, anchor.width),
                )
            )
        return out

    def classify(self, test) -> Dict[str, Tuple[str, ...]]:
        out = CoverageSampler.classify(self, test)
        keys = []
        for state in (test.state1, test.state2):
            if state is None:
                continue
            # The anchor is the lowest solved address of the state: the
            # templates' accesses are base+stride chains, so the chain base
            # is the smallest address.  Solved addresses land either in
            # memory cells or in the base registers the chain starts from.
            candidates = list(state.memory) or list(state.regs.values())
            if not candidates:
                continue
            anchor = min(candidates)
            set_index = (anchor >> self.region.line_shift) & (
                self.region.set_count - 1
            )
            keys.append(f"set:{set_index}")
        if keys:
            out["Mline"] = tuple(keys)
        return out

    def spaces(self) -> Dict[str, Optional[int]]:
        out = CoverageSampler.spaces(self)
        out["Mline"] = self.region.set_count
        return out
