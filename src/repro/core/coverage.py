"""Coverage via supporting observational models (§4.1).

Supporting models induce coarse, enumerable partitions of the input space;
taking successive test cases from different partitions systematically
explores the space.  Path coverage (Mpc, §4.1.1) is built into the
per-path-pair round-robin of the test generator; this module adds
cache-line coverage (Mline, §4.1.2): each test case pins the cache set
index of an accessed address to an enumerated/sampled class, independently
for the two states.

With 128 sets and n accesses the class space is 128^(2n); like Scam-V's
round-robin over a space too large to exhaust, we enumerate classes in a
pseudo-random order (uniform sampling without bookkeeping), which is what
matters for search guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bir import expr as E
from repro.core.probes import architectural_probe_addresses
from repro.core.rename import rename_expr
from repro.core.relation import PairRelation
from repro.obs.base import AttackerRegion
from repro.symbolic.path import SymbolicExecutionResult
from repro.utils.rng import SplittableRandom


class CoverageSampler:
    """Interface: extra constraints steering one test case's generation."""

    name: str = "none"

    def constraints(
        self,
        pair: PairRelation,
        result: SymbolicExecutionResult,
        rng: SplittableRandom,
    ) -> List[E.Expr]:
        raise NotImplementedError


@dataclass
class MagnitudeCoverage(CoverageSampler):
    """Operand-magnitude classes — the §3 running example.

    The paper's example support model "observes the highest two bits of x1
    ... for checking if time needed for additions depends on the size of
    the arguments", repartitioning a class into ``2^16*i`` magnitude
    ranges.  This sampler pins the first variable-latency operand of each
    state into one of four 16-bit-chunk classes, matching the simulated
    early-termination multiplier.
    """

    chunks: int = 4
    chunk_bits: int = 16

    def __post_init__(self):
        self.name = "Mpc&Mmagnitude"

    def constraints(
        self,
        pair: PairRelation,
        result: SymbolicExecutionResult,
        rng: SplittableRandom,
    ) -> List[E.Expr]:
        from repro.bir.tags import ObsKind

        out: List[E.Expr] = []
        for state_index, path_index in (
            (1, pair.path1_index),
            (2, pair.path2_index),
        ):
            path = result[path_index]
            operands = [
                o.exprs[0]
                for o in path.observations
                if o.kind is ObsKind.OPERAND
            ]
            if not operands:
                continue
            operand = rename_expr(operands[0], state_index)
            klass = rng.randint(0, self.chunks - 1)
            upper = 1 << (self.chunk_bits * (klass + 1))
            if klass + 1 < self.chunks:
                out.append(E.ult(operand, E.const(upper, operand.width)))
            if klass > 0:
                lower = 1 << (self.chunk_bits * klass)
                out.append(E.ule(E.const(lower, operand.width), operand))
        return out


class NoCoverage(CoverageSampler):
    """Path coverage only (the built-in Mpc round-robin)."""

    name = "Mpc"

    def constraints(self, pair, result, rng) -> List[E.Expr]:
        return []


@dataclass
class MlineCoverage(CoverageSampler):
    """Mline (§4.1.2): pin the set index of the anchor access of each state.

    Only the *first* architectural access is pinned: the templates' accesses
    are base+stride chains, so one anchor determines the rest and pinning
    several would often be unsatisfiable.
    """

    region: AttackerRegion

    def __post_init__(self):
        self.name = "Mpc&Mline"

    def constraints(
        self,
        pair: PairRelation,
        result: SymbolicExecutionResult,
        rng: SplittableRandom,
    ) -> List[E.Expr]:
        out: List[E.Expr] = []
        for state_index, path_index in (
            (1, pair.path1_index),
            (2, pair.path2_index),
        ):
            path = result[path_index]
            addresses = list(architectural_probe_addresses(path))
            if not addresses:
                continue
            anchor = rename_expr(addresses[0], state_index)
            target_line = rng.randint(0, self.region.set_count - 1)
            out.append(
                E.eq(
                    self.region.line_expr(anchor),
                    E.const(target_line, anchor.width),
                )
            )
        return out
