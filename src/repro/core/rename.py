"""Renaming single-state expressions into the two-state namespace.

A relational formula constrains two copies of the initial state; copy ``i``
of variable ``x0`` is ``x0#i`` and of memory ``MEM`` is ``MEM#i`` (see
:mod:`repro.smt.naming`).
"""

from __future__ import annotations

from typing import Dict

from repro.bir import expr as E
from repro.smt.naming import rename_for_state
from repro.symbolic.path import SymbolicObservation


def rename_expr(expr: E.Expr, state_index: int) -> E.Expr:
    """Rename all variables and base memories of ``expr`` to state ``i``."""
    var_map: Dict[E.Var, E.Expr] = {
        v: E.Var(rename_for_state(v.name, state_index), v.width)
        for v in expr.variables()
    }
    renamed = E.substitute(expr, var_map)
    mem_map: Dict[E.MemVar, E.MemVar] = {
        m: E.MemVar(rename_for_state(m.name, state_index))
        for m in renamed.memories()
    }
    return E.substitute_memory(renamed, mem_map)


def rename_observation(
    obs: SymbolicObservation, state_index: int
) -> SymbolicObservation:
    """Rename an observation's guard and value expressions to state ``i``."""
    return SymbolicObservation(
        tag=obs.tag,
        kind=obs.kind,
        exprs=tuple(rename_expr(e, state_index) for e in obs.exprs),
        guard=rename_expr(obs.guard, state_index),
        label=obs.label,
    )
