"""Renaming single-state expressions into the two-state namespace.

A relational formula constrains two copies of the initial state; copy ``i``
of variable ``x0`` is ``x0#i`` and of memory ``MEM`` is ``MEM#i`` (see
:mod:`repro.smt.naming`).

Renaming is a single bottom-up pass that shares unchanged subtrees (a
subterm without variables or memories is returned as-is, not rebuilt) and
rewrites each distinct subterm of the interned DAG once per call.  Because
the relation synthesizer renames the *same* path conditions and observation
expressions for every path pair, whole-expression results are additionally
memoized by ``(node, state_index)`` in a bounded campaign-scoped cache.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bir import expr as E
from repro.bir import intern
from repro.smt.naming import rename_for_state
from repro.symbolic.path import SymbolicObservation

_CACHE: Dict[Tuple[E.Expr, int], E.Expr] = {}
_CACHE_CAP = 1 << 16

_STATS = intern.register_cache("rename", _CACHE.clear, lambda: len(_CACHE))


def rename_expr(expr: E.Expr, state_index: int) -> E.Expr:
    """Rename all variables and base memories of ``expr`` to state ``i``."""
    key = (expr, state_index)
    cached = _CACHE.get(key)
    if cached is not None:
        _STATS.hits += 1
        return cached
    _STATS.misses += 1
    out = _rename(expr, state_index, {}, {})
    if intern.enabled():
        if len(_CACHE) >= _CACHE_CAP:
            _CACHE.clear()
        _CACHE[key] = out
    return out


def _rename(
    e: E.Expr,
    state_index: int,
    memo: Dict[int, E.Expr],
    mem_memo: Dict[int, E.MemExpr],
) -> E.Expr:
    out = memo.get(id(e))
    if out is not None:
        return out
    if isinstance(e, E.Var):
        out = E.Var(rename_for_state(e.name, state_index), e.width)
    elif isinstance(e, E.Const):
        out = e
    elif isinstance(e, E.UnOp):
        operand = _rename(e.operand, state_index, memo, mem_memo)
        out = e if operand is e.operand else E.UnOp(e.op, operand)
    elif isinstance(e, E.BinOp):
        lhs = _rename(e.lhs, state_index, memo, mem_memo)
        rhs = _rename(e.rhs, state_index, memo, mem_memo)
        out = e if (lhs is e.lhs and rhs is e.rhs) else E.BinOp(e.op, lhs, rhs)
    elif isinstance(e, E.Cmp):
        lhs = _rename(e.lhs, state_index, memo, mem_memo)
        rhs = _rename(e.rhs, state_index, memo, mem_memo)
        out = e if (lhs is e.lhs and rhs is e.rhs) else E.Cmp(e.op, lhs, rhs)
    elif isinstance(e, E.Ite):
        cond = _rename(e.cond, state_index, memo, mem_memo)
        then = _rename(e.then, state_index, memo, mem_memo)
        orelse = _rename(e.orelse, state_index, memo, mem_memo)
        unchanged = cond is e.cond and then is e.then and orelse is e.orelse
        out = e if unchanged else E.Ite(cond, then, orelse)
    elif isinstance(e, E.Load):
        mem = _rename_mem(e.mem, state_index, memo, mem_memo)
        addr = _rename(e.addr, state_index, memo, mem_memo)
        out = (
            e
            if (mem is e.mem and addr is e.addr)
            else E.Load(mem, addr, e.width)
        )
    else:
        raise TypeError(f"rename_expr: unknown expression {e!r}")
    memo[id(e)] = out
    return out


def _rename_mem(
    m: E.MemExpr,
    state_index: int,
    memo: Dict[int, E.Expr],
    mem_memo: Dict[int, E.MemExpr],
) -> E.MemExpr:
    out = mem_memo.get(id(m))
    if out is not None:
        return out
    if isinstance(m, E.MemVar):
        out = E.MemVar(rename_for_state(m.name, state_index))
    elif isinstance(m, E.MemStore):
        mem = _rename_mem(m.mem, state_index, memo, mem_memo)
        addr = _rename(m.addr, state_index, memo, mem_memo)
        value = _rename(m.value, state_index, memo, mem_memo)
        out = E.MemStore(mem, addr, value)
    else:
        raise TypeError(f"rename_expr: unknown memory {m!r}")
    mem_memo[id(m)] = out
    return out


def rename_observation(
    obs: SymbolicObservation, state_index: int
) -> SymbolicObservation:
    """Rename an observation's guard and value expressions to state ``i``."""
    return SymbolicObservation(
        tag=obs.tag,
        kind=obs.kind,
        exprs=tuple(rename_expr(e, state_index) for e in obs.exprs),
        guard=rename_expr(obs.guard, state_index),
        label=obs.label,
    )
