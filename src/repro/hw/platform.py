"""The experiment platform: the TrustZone module of §6.1, simulated.

For every experiment the platform

1. optionally trains the branch predictor by running the program several
   times from a *training state* (§5.3),
2. clears the data cache (and prefetcher stream state),
3. runs the program from each of the two test states,
4. inspects the final cache state restricted to the attacker-visible sets,
5. repeats the whole measurement ``repetitions`` times (10 in the paper) and
   classifies the experiment: runs that disagree make it *inconclusive*;
   otherwise differing snapshots for the two states make it a
   *counterexample* (distinguishable) and equal snapshots a *pass*.

Measurement noise — interrupts, other masters on the SoC — is modelled as a
seeded random perturbation of a snapshot with probability ``noise_rate`` per
measured run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlatformError
from repro.hw.cache import CacheSnapshot
from repro.hw.core import Core, CoreConfig
from repro.hw.state import MachineState, Memory
from repro.hw.tlb import TlbSnapshot
from repro.isa.program import AsmProgram
from repro.utils.rng import SplittableRandom


class Channel(enum.Enum):
    """Which side channel the platform measures (§2.3 extensibility).

    * ``DCACHE`` — the final data-cache state (the paper's experiments).
    * ``TLB``    — the final TLB state (resident pages).
    * ``TIME``   — the execution time in cycles (the PMC measurement; covers
      variable-time arithmetic and other timing channels).
    """

    DCACHE = "dcache"
    TLB = "tlb"
    TIME = "time"


@dataclass(frozen=True)
class StateInputs:
    """Concrete initial values for one test state."""

    regs: Dict[str, int] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)

    def to_machine_state(self) -> MachineState:
        return MachineState(regs=dict(self.regs), memory=Memory(dict(self.memory)))


class ExperimentOutcome(enum.Enum):
    PASS = "pass"  # indistinguishable: consistent with model soundness
    COUNTEREXAMPLE = "counterexample"  # distinguishable: model unsound
    INCONCLUSIVE = "inconclusive"  # runs disagreed; excluded from analysis


@dataclass
class ExperimentResult:
    """Outcome of one experiment (a pair of states on one program).

    ``snapshot1``/``snapshot2`` hold the channel observation of the first
    repetition: a :class:`CacheSnapshot`, a TLB snapshot, or a cycle count,
    depending on the platform's channel.
    """

    outcome: ExperimentOutcome
    snapshot1: object = None
    snapshot2: object = None

    @property
    def distinguishable(self) -> bool:
        return self.outcome is ExperimentOutcome.COUNTEREXAMPLE


@dataclass(frozen=True)
class PlatformConfig:
    """Platform parameters.

    ``attacker_sets`` restricts cache inspection to those set indices (the
    attacker-accessible partition for Mpart experiments); ``None`` exposes
    the whole cache (the Mct attacker who can Flush+Reload any line).
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    repetitions: int = 10
    training_runs: int = 8
    noise_rate: float = 0.0
    attacker_sets: Optional[Tuple[int, ...]] = None
    channel: Channel = Channel.DCACHE


class ExperimentPlatform:
    """Runs experiments on a freshly reset simulated core."""

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        rng: Optional[SplittableRandom] = None,
    ):
        self.config = config or PlatformConfig()
        self.rng = rng or SplittableRandom(0)
        self.experiments_run = 0

    def run_experiment(
        self,
        program: AsmProgram,
        state1: StateInputs,
        state2: StateInputs,
        train: Optional[StateInputs] = None,
    ) -> ExperimentResult:
        """Execute the full 2-state, N-repetition measurement protocol."""
        self.experiments_run += 1
        snaps1: List[object] = []
        snaps2: List[object] = []
        # The simulator is deterministic: without measurement noise all
        # repetitions are bit-identical, so one suffices.
        repetitions = self.config.repetitions if self.config.noise_rate else 1
        for _ in range(repetitions):
            snaps1.append(self._measured_run(program, state1, train))
            snaps2.append(self._measured_run(program, state2, train))
        if any(s != snaps1[0] for s in snaps1) or any(
            s != snaps2[0] for s in snaps2
        ):
            return ExperimentResult(
                ExperimentOutcome.INCONCLUSIVE, snaps1[0], snaps2[0]
            )
        if snaps1[0] != snaps2[0]:
            return ExperimentResult(
                ExperimentOutcome.COUNTEREXAMPLE, snaps1[0], snaps2[0]
            )
        return ExperimentResult(ExperimentOutcome.PASS, snaps1[0], snaps2[0])

    def _measured_run(
        self,
        program: AsmProgram,
        inputs: StateInputs,
        train: Optional[StateInputs],
    ):
        core = Core(self.config.core)
        if train is not None:
            for _ in range(self.config.training_runs):
                core.execute(program, train.to_machine_state())
        core.flush_all()
        cycles_before = core.cycles
        core.execute(program, inputs.to_machine_state())
        observation = self._observe(core, core.cycles - cycles_before)
        if self.config.noise_rate and self.rng.chance(self.config.noise_rate):
            observation = self._perturb(observation)
        return observation

    def _observe(self, core: Core, cycles: int):
        """Read the measured channel off the core (§2.3: per-channel
        executor extension)."""
        channel = self.config.channel
        if channel is Channel.DCACHE:
            snapshot = core.cache.snapshot()
            if self.config.attacker_sets is not None:
                snapshot = snapshot.restrict(self.config.attacker_sets)
            return snapshot
        if channel is Channel.TLB:
            return core.tlb.snapshot()
        if channel is Channel.TIME:
            return cycles
        raise PlatformError(f"unknown channel {channel!r}")

    def _perturb(self, observation):
        """Inject one measurement-noise event into an observation."""
        if isinstance(observation, CacheSnapshot):
            return self._perturb_cache(observation)
        if isinstance(observation, TlbSnapshot):
            return self._perturb_tlb(observation)
        if isinstance(observation, int):
            return observation + self.rng.randint(1, 5)
        raise PlatformError(f"cannot perturb {observation!r}")

    def _perturb_cache(self, snapshot: CacheSnapshot) -> CacheSnapshot:
        """Flip the presence of one random line in the visible snapshot."""
        if self.config.attacker_sets is not None:
            candidates: Sequence[int] = self.config.attacker_sets
        else:
            candidates = range(len(snapshot.tags_per_set))
        target_set = self.rng.choice(list(candidates))
        tags = set(snapshot.tags_per_set[target_set])
        if tags and self.rng.chance(0.5):
            tags.discard(self.rng.choice(sorted(tags)))
        else:
            tags.add(self.rng.randint(0, 255))
        updated = list(snapshot.tags_per_set)
        updated[target_set] = frozenset(tags)
        return CacheSnapshot(tuple(updated))

    def _perturb_tlb(self, snapshot: TlbSnapshot) -> TlbSnapshot:
        """Flip the presence of one page in the TLB snapshot."""
        pages = set(snapshot.pages)
        if pages and self.rng.chance(0.5):
            pages.discard(self.rng.choice(sorted(pages)))
        else:
            pages.add(self.rng.randint(0, 1 << 20))
        return TlbSnapshot(frozenset(pages))
