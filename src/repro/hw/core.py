"""The simulated Cortex-A53 core: in-order execution with a data cache,
stride prefetcher, branch predictor, and bounded non-forwarding speculation.

Speculation model (§6.4-§6.5 behaviours):

* On a mispredicted conditional branch the core transiently executes up to
  ``spec_window`` wrong-path instructions before the branch resolves.
* Transient loads issue real cache fills (the side channel), but their
  results are **never forwarded** to later transient instructions — the A53
  has no register renaming — so any instruction whose inputs depend on a
  transient load result is *poisoned* and a poisoned-address load does not
  issue.
* The single load/store unit stays busy through a transient miss, so a
  second (independent) transient load issues only if the first one hit.
* Direct unconditional branches are not speculated past
  (``straight_line_speculation`` enables the contrary behaviour for
  ablation, as do ``forward_speculative_results`` and the prefetcher's
  ``page_size=0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import HardwareError
from repro.hw.cache import Cache, CacheConfig
from repro.hw.hierarchy import CacheHierarchy, HitLevel
from repro.hw.predictor import BranchPredictor, PredictorConfig
from repro.hw.prefetcher import PrefetcherConfig, StridePrefetcher
from repro.hw.state import MachineState
from repro.hw.tlb import Tlb, TlbConfig
from repro.isa.instructions import (
    AluImm,
    AluOp,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
    TstImm,
)
from repro.isa.program import AsmProgram
from repro.isa.registers import REGISTER_WIDTH
from repro.utils import bitvec


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of the simulated core."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    # Optional shared L2 behind the L1D (None = L1-only, the paper's
    # TrustZone-inspection setting).  See repro.hw.hierarchy.
    l2: Optional[CacheConfig] = None
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    spec_window: int = 8
    forward_speculative_results: bool = False
    straight_line_speculation: bool = False
    prefetch_on_transient: bool = False
    base_cycles: int = 1
    hit_latency: int = 2
    l2_hit_latency: int = 12
    miss_latency: int = 40
    tlb_miss_latency: int = 20
    mispredict_penalty: int = 7
    # Early-termination multiplier: latency grows with the significant
    # 16-bit chunks of the second operand (the §2.3 variable-time
    # arithmetic channel).  False gives a constant 4-cycle multiply.
    variable_time_multiply: bool = True
    max_steps: int = 100_000


@dataclass
class ExecutionTrace:
    """What one architectural execution did (for tests and diagnostics)."""

    cycles: int = 0
    executed_pcs: List[int] = field(default_factory=list)
    load_addresses: List[int] = field(default_factory=list)
    store_addresses: List[int] = field(default_factory=list)
    transient_loads: List[int] = field(default_factory=list)
    mispredictions: int = 0
    prefetches: List[int] = field(default_factory=list)


class Core:
    """One simulated core; owns its cache, prefetcher and predictor."""

    def __init__(self, config: Optional[CoreConfig] = None):
        self.config = config or CoreConfig()
        self.hierarchy = CacheHierarchy(self.config.cache, self.config.l2)
        self.prefetcher = StridePrefetcher(self.config.prefetcher)
        self.predictor = BranchPredictor(self.config.predictor)
        self.tlb = Tlb(self.config.tlb)
        self.cycles = 0

    @property
    def cache(self) -> Cache:
        """The L1 data cache (the level the platform inspects)."""
        return self.hierarchy.l1

    def _access_latency(self, level: HitLevel) -> int:
        if level is HitLevel.L1:
            return self.config.hit_latency
        if level is HitLevel.L2:
            return self.config.l2_hit_latency
        return self.config.miss_latency

    # -- attacker-visible primitives ----------------------------------------

    def flush_line(self, addr: int) -> None:
        """DC CIVAC-style single-line flush (whole hierarchy)."""
        self.hierarchy.flush_line(addr)

    def flush_all(self) -> None:
        self.hierarchy.flush_all()
        self.prefetcher.reset()
        self.tlb.flush_all()

    def timed_access(self, addr: int) -> int:
        """An attacker's timed read: returns the access latency in cycles
        (the PMC cycle-counter measurement of a Flush+Reload probe)."""
        latency = 0
        if not self.tlb.access(addr):
            latency += self.config.tlb_miss_latency
        latency += self._access_latency(self.hierarchy.access(addr))
        self.cycles += latency
        return latency

    # -- execution -----------------------------------------------------------

    def execute(self, program: AsmProgram, state: MachineState) -> ExecutionTrace:
        """Run the program to completion on ``state`` (mutated in place)."""
        trace = ExecutionTrace()
        pc = 0
        steps = 0
        n = len(program)
        while 0 <= pc < n:
            steps += 1
            if steps > self.config.max_steps:
                raise HardwareError(
                    f"program {program.name!r} exceeded {self.config.max_steps} steps"
                )
            inst = program[pc]
            trace.executed_pcs.append(pc)
            self.cycles += self.config.base_cycles
            trace.cycles = self.cycles
            next_pc = pc + 1
            if isinstance(inst, Nop):
                pass
            elif isinstance(inst, MovImm):
                state.write_reg(inst.rd, inst.imm)
            elif isinstance(inst, MovReg):
                state.write_reg(inst.rd, state.read_reg(inst.rn))
            elif isinstance(inst, AluReg):
                rhs = state.read_reg(inst.rm)
                state.write_reg(
                    inst.rd, _alu(inst.op, state.read_reg(inst.rn), rhs)
                )
                if inst.op is AluOp.MUL:
                    self.cycles += self._mul_latency(rhs)
            elif isinstance(inst, AluImm):
                state.write_reg(
                    inst.rd, _alu(inst.op, state.read_reg(inst.rn), inst.imm)
                )
                if inst.op is AluOp.MUL:
                    self.cycles += self._mul_latency(
                        bitvec.truncate(inst.imm, REGISTER_WIDTH)
                    )
            elif isinstance(inst, Ldr):
                addr = self._effective_address(inst, state)
                self._demand_load(addr, trace)
                state.write_reg(inst.rt, state.memory.read(addr))
            elif isinstance(inst, Str):
                addr = self._effective_address(inst, state)
                self._demand_store(addr, trace)
                state.memory.write(addr, state.read_reg(inst.rt))
            elif isinstance(inst, CmpReg):
                state.cmp_lhs = state.read_reg(inst.rn)
                state.cmp_rhs = state.read_reg(inst.rm)
            elif isinstance(inst, CmpImm):
                state.cmp_lhs = state.read_reg(inst.rn)
                state.cmp_rhs = bitvec.truncate(inst.imm, REGISTER_WIDTH)
            elif isinstance(inst, TstImm):
                state.cmp_lhs = state.read_reg(inst.rn) & bitvec.truncate(
                    inst.imm, REGISTER_WIDTH
                )
                state.cmp_rhs = 0
            elif isinstance(inst, BCond):
                next_pc = self._conditional_branch(program, pc, inst, state, trace)
            elif isinstance(inst, B):
                target = program.target_index(inst.target)
                if self.config.straight_line_speculation:
                    self._transient_execute(program, pc + 1, state, trace)
                next_pc = target
            elif isinstance(inst, Ret):
                break
            else:
                raise HardwareError(f"cannot execute {inst!r}")
            pc = next_pc
        trace.cycles = self.cycles
        return trace

    # -- internals -----------------------------------------------------------

    def _effective_address(self, inst, state: MachineState) -> int:
        base = state.read_reg(inst.rn)
        if inst.rm is not None:
            return bitvec.bv_add(base, state.read_reg(inst.rm), REGISTER_WIDTH)
        return bitvec.bv_add(base, inst.imm, REGISTER_WIDTH)

    def _demand_load(self, addr: int, trace: ExecutionTrace) -> bool:
        trace.load_addresses.append(addr)
        self._translate(addr)
        level = self.hierarchy.access(addr)
        self.cycles += self._access_latency(level)
        # The prefetcher works on physical addresses downstream of the TLB;
        # its fills neither consult nor fill the TLB (hence the page stop).
        for target in self.prefetcher.on_load(addr):
            self.hierarchy.prefetch(target)
            trace.prefetches.append(target)
        return level is HitLevel.L1

    def _demand_store(self, addr: int, trace: ExecutionTrace) -> None:
        trace.store_addresses.append(addr)
        self._translate(addr)
        level = self.hierarchy.access(addr)  # write-allocate
        self.cycles += self._access_latency(level)

    def _translate(self, addr: int) -> bool:
        hit = self.tlb.access(addr)
        if not hit:
            self.cycles += self.config.tlb_miss_latency
        return hit

    def _mul_latency(self, multiplier: int) -> int:
        """Early-termination multiplier: one cycle per significant 16-bit
        chunk of the multiplier operand (the §3 running-example channel:
        "checking if time needed ... depends on the size of the arguments").
        """
        if not self.config.variable_time_multiply:
            return 4
        return max(1, (multiplier.bit_length() + 15) // 16)

    def _conditional_branch(
        self,
        program: AsmProgram,
        pc: int,
        inst: BCond,
        state: MachineState,
        trace: ExecutionTrace,
    ) -> int:
        actual = _condition(inst.cond, state)
        predicted = self.predictor.predict(pc)
        target = program.target_index(inst.target)
        if predicted != actual:
            trace.mispredictions += 1
            self.cycles += self.config.mispredict_penalty
            wrong_pc = target if predicted else pc + 1
            self._transient_execute(program, wrong_pc, state, trace)
        self.predictor.update(pc, actual)
        return target if actual else pc + 1

    def _transient_execute(
        self,
        program: AsmProgram,
        start_pc: int,
        state: MachineState,
        trace: ExecutionTrace,
    ) -> None:
        """Execute the wrong path transiently; only cache state persists."""
        shadow: Dict[str, int] = {}
        poisoned: Set[str] = set()
        shadow_cmp = (state.cmp_lhs, state.cmp_rhs)
        cmp_poisoned = False
        lsu_free = True
        pc = start_pc
        n = len(program)
        for _ in range(self.config.spec_window):
            if not 0 <= pc < n:
                break
            inst = program[pc]
            pc += 1
            if isinstance(inst, Nop):
                continue
            if isinstance(inst, MovImm):
                shadow[inst.rd.name] = bitvec.truncate(inst.imm, REGISTER_WIDTH)
                poisoned.discard(inst.rd.name)
                continue
            if isinstance(inst, MovReg):
                shadow[inst.rd.name] = self._shadow_read(inst.rn.name, shadow, state)
                _propagate(poisoned, inst.rd.name, (inst.rn.name,))
                continue
            if isinstance(inst, AluReg):
                value = _alu(
                    inst.op,
                    self._shadow_read(inst.rn.name, shadow, state),
                    self._shadow_read(inst.rm.name, shadow, state),
                )
                shadow[inst.rd.name] = value
                _propagate(poisoned, inst.rd.name, (inst.rn.name, inst.rm.name))
                continue
            if isinstance(inst, AluImm):
                value = _alu(
                    inst.op, self._shadow_read(inst.rn.name, shadow, state), inst.imm
                )
                shadow[inst.rd.name] = value
                _propagate(poisoned, inst.rd.name, (inst.rn.name,))
                continue
            if isinstance(inst, Ldr):
                sources = [inst.rn.name]
                if inst.rm is not None:
                    sources.append(inst.rm.name)
                if any(s in poisoned for s in sources):
                    # Address depends on a non-forwarded transient result:
                    # the load cannot issue.  Its target is unavailable.
                    poisoned.add(inst.rt.name)
                    continue
                if not lsu_free:
                    poisoned.add(inst.rt.name)
                    continue
                base = self._shadow_read(inst.rn.name, shadow, state)
                offset = (
                    self._shadow_read(inst.rm.name, shadow, state)
                    if inst.rm is not None
                    else inst.imm
                )
                addr = bitvec.bv_add(base, offset, REGISTER_WIDTH)
                # Translation happens before the access squashes: transient
                # loads fill the TLB (a TLB-based transient channel).
                self.tlb.access(addr)
                level = self.hierarchy.access(addr)
                hit = level is HitLevel.L1
                trace.transient_loads.append(addr)
                if self.config.prefetch_on_transient:
                    for target in self.prefetcher.on_load(addr):
                        self.hierarchy.prefetch(target)
                        trace.prefetches.append(target)
                if not hit and not self.config.forward_speculative_results:
                    # The single in-order LSU stays busy through the miss; no
                    # further transient load can issue before the branch
                    # resolves.  The forwarding ablation models an
                    # out-of-order core with multiple outstanding misses, so
                    # it is exempt.
                    lsu_free = False
                if self.config.forward_speculative_results:
                    shadow[inst.rt.name] = state.memory.read(addr)
                    poisoned.discard(inst.rt.name)
                else:
                    poisoned.add(inst.rt.name)
                continue
            if isinstance(inst, Str):
                # Stores are not speculatively retired and do not touch the
                # cache before the branch resolves.
                continue
            if isinstance(inst, (CmpReg, CmpImm, TstImm)):
                lhs_name = inst.rn.name
                lhs = self._shadow_read(lhs_name, shadow, state)
                if isinstance(inst, CmpReg):
                    rhs = self._shadow_read(inst.rm.name, shadow, state)
                    cmp_poisoned = lhs_name in poisoned or inst.rm.name in poisoned
                elif isinstance(inst, CmpImm):
                    rhs = bitvec.truncate(inst.imm, REGISTER_WIDTH)
                    cmp_poisoned = lhs_name in poisoned
                else:
                    lhs &= bitvec.truncate(inst.imm, REGISTER_WIDTH)
                    rhs = 0
                    cmp_poisoned = lhs_name in poisoned
                shadow_cmp = (lhs, rhs)
                continue
            if isinstance(inst, B):
                # Direct branches resolve in the frontend even transiently.
                pc = program.target_index(inst.target)
                continue
            if isinstance(inst, (BCond, Ret)):
                # A nested unresolved branch (or the program end) stops the
                # transient window.
                break
        # Squash: shadow register and comparison state are discarded.

    def _shadow_read(
        self, name: str, shadow: Dict[str, int], state: MachineState
    ) -> int:
        if name in shadow:
            return shadow[name]
        return state.regs[name]


def _propagate(poisoned: Set[str], target: str, sources: Tuple[str, ...]) -> None:
    if any(s in poisoned for s in sources):
        poisoned.add(target)
    else:
        poisoned.discard(target)


def _alu(op: AluOp, a: int, b: int) -> int:
    width = REGISTER_WIDTH
    b = bitvec.truncate(b, width)
    if op is AluOp.ADD:
        return bitvec.bv_add(a, b, width)
    if op is AluOp.SUB:
        return bitvec.bv_sub(a, b, width)
    if op is AluOp.AND:
        return bitvec.bv_and(a, b, width)
    if op is AluOp.ORR:
        return bitvec.bv_or(a, b, width)
    if op is AluOp.EOR:
        return bitvec.bv_xor(a, b, width)
    if op is AluOp.LSL:
        return bitvec.bv_shl(a, min(b, width), width)
    if op is AluOp.LSR:
        return bitvec.bv_lshr(a, min(b, width), width)
    if op is AluOp.MUL:
        return bitvec.bv_mul(a, b, width)
    raise HardwareError(f"unknown ALU op {op!r}")


def _condition(cond: Cond, state: MachineState) -> bool:
    l, r = state.cmp_lhs, state.cmp_rhs
    sl = bitvec.to_signed(l, REGISTER_WIDTH)
    sr = bitvec.to_signed(r, REGISTER_WIDTH)
    if cond is Cond.EQ:
        return l == r
    if cond is Cond.NE:
        return l != r
    if cond is Cond.LO:
        return l < r
    if cond is Cond.HS:
        return l >= r
    if cond is Cond.LS:
        return l <= r
    if cond is Cond.HI:
        return l > r
    if cond is Cond.LT:
        return sl < sr
    if cond is Cond.GE:
        return sl >= sr
    if cond is Cond.LE:
        return sl <= sr
    if cond is Cond.GT:
        return sl > sr
    raise HardwareError(f"unknown condition {cond!r}")
