"""Architectural machine state: registers and data memory."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.isa.registers import NUM_REGISTERS, REGISTER_WIDTH, Reg
from repro.utils import bitvec


class Memory:
    """Word-granular data memory: a sparse map of byte address -> 64-bit word.

    Loads and stores in the mini ISA transfer whole 64-bit words at the
    exact effective address; overlapping accesses at unaligned offsets are
    not modelled (the generators emit 8-byte-aligned values), which matches
    the BIR ``Load``/``Store`` semantics the analysis side uses.  Reads of
    unwritten addresses return zero — the platform zeroes experiment memory
    before every run.
    """

    def __init__(self, contents: Optional[Dict[int, int]] = None):
        self._words: Dict[int, int] = {
            addr: bitvec.truncate(value, REGISTER_WIDTH)
            for addr, value in (contents or {}).items()
        }

    def read(self, addr: int) -> int:
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._words[addr] = bitvec.truncate(value, REGISTER_WIDTH)

    def copy(self) -> "Memory":
        return Memory(self._words)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._words.items()

    def __len__(self) -> int:
        return len(self._words)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self._words == other._words


class MachineState:
    """Registers, comparison state, and memory for one execution."""

    def __init__(
        self,
        regs: Optional[Dict[str, int]] = None,
        memory: Optional[Memory] = None,
    ):
        self.regs: Dict[str, int] = {f"x{i}": 0 for i in range(NUM_REGISTERS)}
        for name, value in (regs or {}).items():
            self.regs[name] = bitvec.truncate(value, REGISTER_WIDTH)
        self.memory = memory if memory is not None else Memory()
        # Comparison state set by CMP/TST, read by B.cond (see repro.isa).
        self.cmp_lhs = 0
        self.cmp_rhs = 0

    def read_reg(self, reg: Reg) -> int:
        return self.regs[reg.name]

    def write_reg(self, reg: Reg, value: int) -> None:
        self.regs[reg.name] = bitvec.truncate(value, REGISTER_WIDTH)

    def copy(self) -> "MachineState":
        clone = MachineState(regs=self.regs, memory=self.memory.copy())
        clone.cmp_lhs = self.cmp_lhs
        clone.cmp_rhs = self.cmp_rhs
        return clone
