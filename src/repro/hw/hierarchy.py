"""Two-level cache hierarchy.

The Cortex-A53 cluster has a shared, inclusive L2 behind the per-core L1D;
cross-core Flush+Reload observes it.  The paper's TrustZone module reads
the L1 data-cache state, so the default experiment configuration runs
L1-only; enabling the L2 (``CoreConfig(l2=...)`` or
``profiles.cortex_a53_with_l2()``) adds the second level with inclusive
back-invalidation and a distinct hit latency.

``access`` reports which level served the request; the core maps levels to
latencies and the LSU-availability rule (§6.5 modelling) keys on L1 hits.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.hw.cache import Cache, CacheConfig


class HitLevel(enum.Enum):
    """Where an access was served."""

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


class CacheHierarchy:
    """An L1 data cache with an optional inclusive L2 behind it."""

    def __init__(
        self,
        l1_config: Optional[CacheConfig] = None,
        l2_config: Optional[CacheConfig] = None,
    ):
        self.l1 = Cache(l1_config)
        self.l2: Optional[Cache] = Cache(l2_config) if l2_config else None

    def access(self, addr: int) -> HitLevel:
        """Demand access; fills the missing levels on the way."""
        if self.l1.access(addr):
            # Keep the L2's recency roughly in step with reuse (a hit in L1
            # does not probe L2 on real hardware; presence is what matters).
            return HitLevel.L1
        if self.l2 is None:
            return HitLevel.MEMORY
        if self.l2.access(addr):
            return HitLevel.L2
        return HitLevel.MEMORY

    def prefetch(self, addr: int) -> None:
        """Prefetcher fill: allocates in both levels, no counter effect."""
        self.l1.prefetch(addr)
        if self.l2 is not None:
            self.l2.prefetch(addr)

    def contains(self, addr: int) -> bool:
        if self.l1.contains(addr):
            return True
        return self.l2 is not None and self.l2.contains(addr)

    def flush_line(self, addr: int) -> None:
        """Flush a line from the whole hierarchy (DC CIVAC semantics)."""
        self.l1.flush_line(addr)
        if self.l2 is not None:
            self.l2.flush_line(addr)

    def flush_all(self) -> None:
        self.l1.flush_all()
        if self.l2 is not None:
            self.l2.flush_all()

    def evict_l2_line(self, addr: int) -> None:
        """Evict from L2 with inclusive back-invalidation of L1.

        This is the primitive a cross-core attacker uses (Prime+Probe on
        the shared L2 evicts the victim's L1 copies too).
        """
        if self.l2 is not None:
            self.l2.flush_line(addr)
        self.l1.flush_line(addr)

    def l1_snapshot(self):
        return self.l1.snapshot()

    def l2_snapshot(self):
        if self.l2 is None:
            return None
        return self.l2.snapshot()
