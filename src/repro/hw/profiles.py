"""Named core profiles.

Scam-V targets multiple platforms (§2.3: ARMv8, CortexM0, RISC-V); the
microarchitectural knobs that matter for its experiments differ per core.
These profiles bundle :class:`~repro.hw.core.CoreConfig` settings for the
cores discussed in the paper and for the ablation points of §6.5:

* :func:`cortex_a53` — the paper's evaluation platform: stride prefetcher
  with page stop, PHT prediction, bounded non-forwarding speculation.
* :func:`cortex_a53_no_speculation` — the same core with speculation
  fenced off (what the paper's countermeasure discussion assumes).
* :func:`out_of_order` — a speculative out-of-order core: forwarding
  transient results and deeper windows (the class of core for which Mspec1
  would also be unsound, §6.5).
* :func:`cortex_m0_like` — a microcontroller-class core: no cache, no
  prefetch, no speculation; every observational model over loads is
  trivially sound for the cache channel, but timing channels remain.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Callable, Dict, List, Tuple

from repro.errors import HardwareError
from repro.hw.cache import CacheConfig
from repro.hw.core import CoreConfig
from repro.hw.predictor import PredictorConfig
from repro.hw.prefetcher import PrefetcherConfig


def cortex_a53() -> CoreConfig:
    """The paper's Raspberry Pi 3 core (§6.1)."""
    return CoreConfig()


def cortex_a53_no_speculation() -> CoreConfig:
    """A53 with speculative execution disabled (e.g. fenced binaries)."""
    return CoreConfig(spec_window=0)


def cortex_a53_with_l2() -> CoreConfig:
    """A53 cluster view: L1D plus a shared inclusive 512 KiB L2.

    The paper's platform inspects the L1 state directly, so the default
    profile is L1-only; this profile adds the second level for
    cross-core-style Flush+Reload experiments.
    """
    return CoreConfig(l2=CacheConfig(sets=512, ways=16, line_size=64))


def cortex_a53_no_prefetch() -> CoreConfig:
    """A53 with the L1D prefetcher disabled (CPUACTLR-style setting)."""
    return CoreConfig(prefetcher=PrefetcherConfig(enabled=False))


def out_of_order(spec_window: int = 32) -> CoreConfig:
    """A speculative out-of-order core: transient results forward.

    On this core, Mspec1 is unsound too (dependent transient loads issue),
    and a sound model must observe arbitrarily deep transient loads — the
    §6.5 argument for core-specific models.
    """
    return CoreConfig(
        spec_window=spec_window,
        forward_speculative_results=True,
        prefetch_on_transient=True,
    )


#: Named hardware profiles, the registry both the CLI (``--hw-profile``)
#: and the scenario spec format (``hw_profile = "..."``) resolve against.
#: Values are zero-argument factories so each resolution gets a fresh
#: (immutable) :class:`CoreConfig`.
PROFILES: Dict[str, Callable[[], CoreConfig]] = {}


def _profile(name: str, factory: Callable[[], CoreConfig]) -> None:
    PROFILES[name] = factory


def profile_names() -> List[str]:
    """Every registered profile name, sorted for stable enumeration."""
    return sorted(PROFILES)


def profile_summaries() -> List[Tuple[str, str]]:
    """``(name, one-line summary)`` pairs, sorted by name.

    The summary is the first line of the profile factory's docstring —
    the same text a reader sees in this module — so ``--list-hw-profiles``
    never drifts from the source of truth.
    """
    out: List[Tuple[str, str]] = []
    for name in profile_names():
        doc = PROFILES[name].__doc__ or ""
        summary = doc.strip().splitlines()[0].strip() if doc.strip() else ""
        out.append((name, summary))
    return out


def config_digest(config) -> str:
    """A short stable fingerprint of a hardware-config dataclass.

    Hashes the canonical JSON of :func:`dataclasses.asdict` (sorted keys,
    enums via ``str``), so two structurally-equal configs — whether built
    from a named profile, a matrix grid point, or by hand — always agree,
    and any knob change (replacement policy, spec window, noise rate, ...)
    changes the digest.  Used by the checkpoint journal to refuse resuming
    a journal recorded under a different hardware configuration.
    """
    doc = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.blake2b(doc.encode("utf-8"), digest_size=6).hexdigest()


def resolve_profile(name: str) -> CoreConfig:
    """Build the :class:`CoreConfig` of a named profile.

    Raises :class:`~repro.errors.HardwareError` naming the known profiles
    when ``name`` is not registered, so CLI and spec validation report the
    same diagnostic.
    """
    try:
        factory = PROFILES[name]
    except KeyError:
        known = ", ".join(profile_names())
        raise HardwareError(
            f"unknown hardware profile {name!r} (known: {known})"
        ) from None
    return factory()


def cortex_m0_like() -> CoreConfig:
    """A microcontroller-class core: in-order, no cache state to leak.

    Modelled as a single-set direct-mapped cache holding one line (the
    closest a set-associative model gets to "no cache"), with prefetch and
    speculation off and a constant-time multiplier.
    """
    return CoreConfig(
        cache=CacheConfig(sets=1, ways=1, line_size=64),
        prefetcher=PrefetcherConfig(enabled=False),
        predictor=PredictorConfig(),
        spec_window=0,
        variable_time_multiply=False,
    )


_profile("cortex-a53", cortex_a53)
_profile("cortex-a53-no-speculation", cortex_a53_no_speculation)
_profile("cortex-a53-l2", cortex_a53_with_l2)
_profile("cortex-a53-no-prefetch", cortex_a53_no_prefetch)
_profile("out-of-order", out_of_order)
_profile("cortex-m0", cortex_m0_like)
