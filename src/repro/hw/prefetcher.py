"""Stride prefetcher with a page-boundary stop.

Models the Cortex-A53 L1D prefetcher as described in §6.1: "activated when a
stride of at least three loads accesses addresses that are equidistant", and
— inferred from the page-aligned Mpart experiments of §6.2 — it does not
prefetch across a 4 KiB page boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class PrefetcherConfig:
    """Trigger and reach parameters.

    ``trigger_loads``  — equidistant loads needed to arm the prefetcher.
    ``degree``         — how many strides ahead are prefetched once armed.
    ``page_size``      — prefetches never cross this boundary; 0 disables
                         the stop (the ablation of §6.2's page-aligned
                         result).
    ``enabled``        — master switch.
    """

    trigger_loads: int = 3
    degree: int = 1
    page_size: int = 4096
    enabled: bool = True


class StridePrefetcher:
    """Detects equidistant load streams and emits prefetch addresses."""

    def __init__(self, config: Optional[PrefetcherConfig] = None):
        self.config = config or PrefetcherConfig()
        self._last_addr: Optional[int] = None
        self._stride: Optional[int] = None
        self._run_length = 1  # loads in the current equidistant run

    def reset(self) -> None:
        self._last_addr = None
        self._stride = None
        self._run_length = 1

    def on_load(self, addr: int) -> List[int]:
        """Feed a demand load; returns addresses to prefetch (maybe empty)."""
        if not self.config.enabled:
            return []
        prefetches: List[int] = []
        if self._last_addr is not None:
            stride = addr - self._last_addr
            if stride != 0 and stride == self._stride:
                self._run_length += 1
            elif stride != 0:
                self._stride = stride
                self._run_length = 2
            else:
                self._run_length = 1
        self._last_addr = addr
        if (
            self._stride
            and self._run_length >= self.config.trigger_loads
        ):
            prefetches = self._targets(addr, self._stride)
        return prefetches

    def _targets(self, addr: int, stride: int) -> List[int]:
        out: List[int] = []
        current = addr
        for _ in range(self.config.degree):
            nxt = current + stride
            if nxt < 0:
                break
            if self.config.page_size and not self._same_page(current, nxt):
                break  # the A53 prefetcher stops at the page boundary
            out.append(nxt)
            current = nxt
        return out

    def _same_page(self, a: int, b: int) -> bool:
        page = self.config.page_size
        return a // page == b // page
