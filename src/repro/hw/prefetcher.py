"""Hardware prefetcher with a page-boundary stop.

Models the Cortex-A53 L1D prefetcher as described in §6.1: "activated when a
stride of at least three loads accesses addresses that are equidistant", and
— inferred from the page-aligned Mpart experiments of §6.2 — it does not
prefetch across a 4 KiB page boundary.

The prefetcher ``kind`` is a microarchitecture-matrix axis (ROADMAP item 1):

* ``stride``   — the paper's A53 approximation: armed after
  ``trigger_loads`` equidistant loads, fetches ``degree`` strides ahead.
* ``nextline`` — fetch the next ``degree`` cache lines after *every* load
  (the simplest real prefetcher; present in many low-end cores).  Far more
  aggressive than stride, so models that tolerate stride-triggered fills
  can break under it.
* ``off``      — no prefetching at all (equivalent to ``enabled=False``,
  but expressible as a sweep-axis value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HardwareError

#: The recognised values of :attr:`PrefetcherConfig.kind`.
PREFETCHER_KINDS: Tuple[str, ...] = ("stride", "nextline", "off")


@dataclass(frozen=True)
class PrefetcherConfig:
    """Trigger and reach parameters.

    ``kind``           — prefetch strategy: one of :data:`PREFETCHER_KINDS`.
    ``trigger_loads``  — equidistant loads needed to arm the ``stride``
                         prefetcher (ignored by ``nextline``).
    ``degree``         — how many strides/lines ahead are prefetched.
    ``page_size``      — prefetches never cross this boundary; 0 disables
                         the stop (the ablation of §6.2's page-aligned
                         result).
    ``line_size``      — cache-line granularity of ``nextline`` targets.
    ``enabled``        — master switch (``kind="off"`` has the same effect).
    """

    kind: str = "stride"
    trigger_loads: int = 3
    degree: int = 1
    page_size: int = 4096
    line_size: int = 64
    enabled: bool = True

    def __post_init__(self):
        if self.kind not in PREFETCHER_KINDS:
            known = ", ".join(PREFETCHER_KINDS)
            raise HardwareError(
                f"unknown prefetcher kind {self.kind!r} (known: {known})"
            )


class StridePrefetcher:
    """Detects load streams and emits prefetch addresses per the ``kind``."""

    def __init__(self, config: Optional[PrefetcherConfig] = None):
        self.config = config or PrefetcherConfig()
        self._last_addr: Optional[int] = None
        self._stride: Optional[int] = None
        self._run_length = 1  # loads in the current equidistant run

    def reset(self) -> None:
        self._last_addr = None
        self._stride = None
        self._run_length = 1

    def on_load(self, addr: int) -> List[int]:
        """Feed a demand load; returns addresses to prefetch (maybe empty)."""
        if not self.config.enabled or self.config.kind == "off":
            return []
        if self.config.kind == "nextline":
            return self._targets(addr, self.config.line_size)
        prefetches: List[int] = []
        if self._last_addr is not None:
            stride = addr - self._last_addr
            if stride != 0 and stride == self._stride:
                self._run_length += 1
            elif stride != 0:
                self._stride = stride
                self._run_length = 2
            else:
                self._run_length = 1
        self._last_addr = addr
        if (
            self._stride
            and self._run_length >= self.config.trigger_loads
        ):
            prefetches = self._targets(addr, self._stride)
        return prefetches

    def _targets(self, addr: int, stride: int) -> List[int]:
        out: List[int] = []
        current = addr
        for _ in range(self.config.degree):
            nxt = current + stride
            if nxt < 0:
                break
            if self.config.page_size and not self._same_page(current, nxt):
                break  # the A53 prefetcher stops at the page boundary
            out.append(nxt)
            current = nxt
        return out

    def _same_page(self, a: int, b: int) -> bool:
        page = self.config.page_size
        return a // page == b // page
