"""Set-associative data cache with configurable replacement.

Defaults model the Cortex-A53 L1D: 32 KiB, 4 ways, 64-byte lines, 128 sets,
LRU replacement.  The TrustZone-style platform inspects the cache via
:meth:`Cache.snapshot`, which records the set of resident tags per cache
set — the same information the paper's privileged debug reads provide.

Replacement is a microarchitecture-matrix axis (ROADMAP item 1): the same
observational model can be sound under deterministic LRU yet unsound under
tree-PLRU or pseudo-random victim selection, because the *residency* of a
line after a conflict depends on the policy.  Three policies are modelled:

* ``lru``    — true least-recently-used (the paper's A53 L1D approximation).
* ``plru``   — tree-PLRU: one bit per internal node of a binary tree over
  the ways, as implemented by most real L1 caches (the A53's I-cache, most
  Intel L1s).  Deterministic, but the victim depends on the *order* of hits
  since the last fill, not on recency rank.
* ``random`` — seeded pseudo-random victim selection (Cortex-A53's L1D
  documented policy is in fact pseudo-random).  Deterministic for a given
  ``CacheConfig.replacement_seed``: the victim way is derived by hashing
  ``(seed, set index, per-set fill counter)``, so two simulator processes
  — and two repetitions of one experiment — always agree.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import HardwareError

#: The recognised values of :attr:`CacheConfig.replacement`.
REPLACEMENT_POLICIES: Tuple[str, ...] = ("lru", "plru", "random")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and replacement policy of a set-associative cache."""

    sets: int = 128
    ways: int = 4
    line_size: int = 64
    #: Victim-selection policy: one of :data:`REPLACEMENT_POLICIES`.
    replacement: str = "lru"
    #: Seed of the ``random`` policy's deterministic victim stream; ignored
    #: by the deterministic policies.
    replacement_seed: int = 0

    def __post_init__(self):
        for field_name in ("sets", "ways", "line_size"):
            value = getattr(self, field_name)
            if value <= 0 or value & (value - 1):
                raise HardwareError(f"{field_name} must be a power of two, got {value}")
        if self.replacement not in REPLACEMENT_POLICIES:
            known = ", ".join(REPLACEMENT_POLICIES)
            raise HardwareError(
                f"unknown replacement policy {self.replacement!r} "
                f"(known: {known})"
            )

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def set_mask(self) -> int:
        return self.sets - 1

    def set_index(self, addr: int) -> int:
        return (addr >> self.line_shift) & self.set_mask

    def tag(self, addr: int) -> int:
        return addr >> (self.line_shift + self.sets.bit_length() - 1)

    def line_of(self, addr: int) -> int:
        """The global line number (tag and set combined)."""
        return addr >> self.line_shift


@dataclass(frozen=True)
class CacheSnapshot:
    """Immutable view of cache contents: resident tags per set.

    Only *presence* is recorded (not replacement order), matching what a
    Flush+Reload or debug-read attacker can resolve.  ``restrict`` projects
    the snapshot onto an attacker-visible range of sets.
    """

    tags_per_set: Tuple[FrozenSet[int], ...]

    def restrict(self, set_indices: Iterable[int]) -> "CacheSnapshot":
        wanted = set(set_indices)
        return CacheSnapshot(
            tuple(
                tags if index in wanted else frozenset()
                for index, tags in enumerate(self.tags_per_set)
            )
        )

    def occupied_sets(self) -> Tuple[int, ...]:
        return tuple(
            index for index, tags in enumerate(self.tags_per_set) if tags
        )

    def __len__(self) -> int:
        return sum(len(tags) for tags in self.tags_per_set)


class _LruSet:
    """One set under true LRU: resident tags ordered most-recent last."""

    __slots__ = ("_tags", "_ways")

    def __init__(self, ways: int):
        self._ways = ways
        self._tags: List[int] = []

    def contains(self, tag: int) -> bool:
        return tag in self._tags

    def touch(self, tag: int) -> None:
        self._tags.remove(tag)
        self._tags.append(tag)

    def fill(self, tag: int) -> None:
        if len(self._tags) >= self._ways:
            self._tags.pop(0)  # evict LRU
        self._tags.append(tag)

    def remove(self, tag: int) -> None:
        if tag in self._tags:
            self._tags.remove(tag)

    def evict_position(self, position: int) -> None:
        if self._tags:
            self._tags.pop(position % len(self._tags))

    def clear(self) -> None:
        self._tags.clear()

    def tags(self) -> List[int]:
        return list(self._tags)


class _PlruSet:
    """One set under tree-PLRU.

    ``ways`` is a power of two (enforced by :class:`CacheConfig`); the
    ``ways - 1`` internal nodes of a complete binary tree each hold one
    bit pointing towards the *pseudo*-least-recently-used half.  An access
    to way ``w`` flips every node on the root-to-``w`` path to point away
    from ``w``; the victim is found by walking the pointed-to path.
    """

    __slots__ = ("_lines", "_bits", "_ways")

    def __init__(self, ways: int):
        self._ways = ways
        self._lines: List[Optional[int]] = [None] * ways
        self._bits: List[int] = [0] * max(ways - 1, 0)

    def contains(self, tag: int) -> bool:
        return tag in self._lines

    def _touch_way(self, way: int) -> None:
        # Walk from the root; at each node point the bit *away* from the
        # half containing ``way``.
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point right, away from the left half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point left
                node = 2 * node + 2
                lo = mid
        # ``node`` indexes past the bit array exactly when ways == 1.

    def _victim_way(self) -> int:
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo

    def touch(self, tag: int) -> None:
        self._touch_way(self._lines.index(tag))

    def fill(self, tag: int) -> None:
        for way, line in enumerate(self._lines):
            if line is None:
                self._lines[way] = tag
                self._touch_way(way)
                return
        victim = self._victim_way()
        self._lines[victim] = tag
        self._touch_way(victim)

    def remove(self, tag: int) -> None:
        for way, line in enumerate(self._lines):
            if line == tag:
                self._lines[way] = None
                return

    def evict_position(self, position: int) -> None:
        resident = [way for way, line in enumerate(self._lines) if line is not None]
        if resident:
            self._lines[resident[position % len(resident)]] = None

    def clear(self) -> None:
        self._lines = [None] * self._ways
        self._bits = [0] * max(self._ways - 1, 0)

    def tags(self) -> List[int]:
        return [line for line in self._lines if line is not None]


class _RandomSet:
    """One set under seeded pseudo-random replacement.

    The victim way of the ``n``-th conflict fill in this set is
    ``blake2b(seed, set index, n) mod ways`` — a pure function of the
    configuration and the fill history, so replays and worker processes
    agree bit-for-bit.
    """

    __slots__ = ("_lines", "_ways", "_seed", "_set_index", "_fills")

    def __init__(self, ways: int, seed: int, set_index: int):
        self._ways = ways
        self._seed = seed
        self._set_index = set_index
        self._lines: List[Optional[int]] = [None] * ways
        self._fills = 0

    def contains(self, tag: int) -> bool:
        return tag in self._lines

    def touch(self, tag: int) -> None:
        pass  # random replacement keeps no recency state

    def _victim_way(self) -> int:
        key = f"{self._seed}:{self._set_index}:{self._fills}".encode("utf-8")
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self._ways

    def fill(self, tag: int) -> None:
        for way, line in enumerate(self._lines):
            if line is None:
                self._lines[way] = tag
                return
        self._fills += 1
        self._lines[self._victim_way()] = tag

    def remove(self, tag: int) -> None:
        for way, line in enumerate(self._lines):
            if line == tag:
                self._lines[way] = None
                return

    def evict_position(self, position: int) -> None:
        resident = [way for way, line in enumerate(self._lines) if line is not None]
        if resident:
            self._lines[resident[position % len(resident)]] = None

    def clear(self) -> None:
        self._lines = [None] * self._ways
        self._fills = 0

    def tags(self) -> List[int]:
        return [line for line in self._lines if line is not None]


def _make_set(config: CacheConfig, set_index: int):
    if config.replacement == "lru":
        return _LruSet(config.ways)
    if config.replacement == "plru":
        return _PlruSet(config.ways)
    return _RandomSet(config.ways, config.replacement_seed, set_index)


class Cache:
    """A set-associative cache tracking presence and replacement state."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config or CacheConfig()
        self._sets = [
            _make_set(self.config, index) for index in range(self.config.sets)
        ]
        self.hits = 0
        self.misses = 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def contains(self, addr: int) -> bool:
        """Presence check with no side effect on replacement state."""
        return self._sets[self.config.set_index(addr)].contains(
            self.config.tag(addr)
        )

    def access(self, addr: int) -> bool:
        """Demand access: returns True on hit; fills the line on miss."""
        cache_set = self._sets[self.config.set_index(addr)]
        tag = self.config.tag(addr)
        if cache_set.contains(tag):
            cache_set.touch(tag)
            self.hits += 1
            return True
        self.misses += 1
        cache_set.fill(tag)
        return False

    def prefetch(self, addr: int) -> None:
        """Fill a line without touching hit/miss counters (prefetcher port)."""
        cache_set = self._sets[self.config.set_index(addr)]
        tag = self.config.tag(addr)
        if cache_set.contains(tag):
            return
        cache_set.fill(tag)

    def flush_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def flush_line(self, addr: int) -> None:
        self._sets[self.config.set_index(addr)].remove(self.config.tag(addr))

    def evict_set_way(self, set_index: int, position: int = 0) -> None:
        """Remove one resident line from a set (noise injection hook)."""
        self._sets[set_index].evict_position(position)

    def insert_line(self, set_index: int, tag: int) -> None:
        """Force a line into a set (noise injection hook)."""
        cache_set = self._sets[set_index]
        if not cache_set.contains(tag):
            cache_set.fill(tag)

    def snapshot(self) -> CacheSnapshot:
        return CacheSnapshot(
            tuple(frozenset(cache_set.tags()) for cache_set in self._sets)
        )

    def resident_lines(self) -> Tuple[Tuple[int, int], ...]:
        """All resident lines as ``(set_index, tag)`` pairs."""
        out = []
        for index, cache_set in enumerate(self._sets):
            out.extend((index, tag) for tag in cache_set.tags())
        return tuple(out)
