"""Set-associative data cache with LRU replacement.

Defaults model the Cortex-A53 L1D: 32 KiB, 4 ways, 64-byte lines, 128 sets.
The TrustZone-style platform inspects the cache via :meth:`Cache.snapshot`,
which records the set of resident tags per cache set — the same information
the paper's privileged debug reads provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import HardwareError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache."""

    sets: int = 128
    ways: int = 4
    line_size: int = 64

    def __post_init__(self):
        for field_name in ("sets", "ways", "line_size"):
            value = getattr(self, field_name)
            if value <= 0 or value & (value - 1):
                raise HardwareError(f"{field_name} must be a power of two, got {value}")

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def set_mask(self) -> int:
        return self.sets - 1

    def set_index(self, addr: int) -> int:
        return (addr >> self.line_shift) & self.set_mask

    def tag(self, addr: int) -> int:
        return addr >> (self.line_shift + self.sets.bit_length() - 1)

    def line_of(self, addr: int) -> int:
        """The global line number (tag and set combined)."""
        return addr >> self.line_shift


@dataclass(frozen=True)
class CacheSnapshot:
    """Immutable view of cache contents: resident tags per set.

    Only *presence* is recorded (not LRU order), matching what a
    Flush+Reload or debug-read attacker can resolve.  ``restrict`` projects
    the snapshot onto an attacker-visible range of sets.
    """

    tags_per_set: Tuple[FrozenSet[int], ...]

    def restrict(self, set_indices: Iterable[int]) -> "CacheSnapshot":
        wanted = set(set_indices)
        return CacheSnapshot(
            tuple(
                tags if index in wanted else frozenset()
                for index, tags in enumerate(self.tags_per_set)
            )
        )

    def occupied_sets(self) -> Tuple[int, ...]:
        return tuple(
            index for index, tags in enumerate(self.tags_per_set) if tags
        )

    def __len__(self) -> int:
        return sum(len(tags) for tags in self.tags_per_set)


class Cache:
    """A set-associative cache tracking only presence and recency of lines."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config or CacheConfig()
        # Per set: list of tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(self.config.sets)]
        self.hits = 0
        self.misses = 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def contains(self, addr: int) -> bool:
        """Presence check with no side effect on replacement state."""
        return self.config.tag(addr) in self._sets[self.config.set_index(addr)]

    def access(self, addr: int) -> bool:
        """Demand access: returns True on hit; fills the line on miss."""
        set_index = self.config.set_index(addr)
        tag = self.config.tag(addr)
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        self._fill(set_index, tag)
        return False

    def prefetch(self, addr: int) -> None:
        """Fill a line without touching hit/miss counters (prefetcher port)."""
        set_index = self.config.set_index(addr)
        tag = self.config.tag(addr)
        ways = self._sets[set_index]
        if tag in ways:
            return
        self._fill(set_index, tag)

    def _fill(self, set_index: int, tag: int) -> None:
        ways = self._sets[set_index]
        if len(ways) >= self.config.ways:
            ways.pop(0)  # evict LRU
        ways.append(tag)

    def flush_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def flush_line(self, addr: int) -> None:
        set_index = self.config.set_index(addr)
        tag = self.config.tag(addr)
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)

    def evict_set_way(self, set_index: int, position: int = 0) -> None:
        """Remove one resident line from a set (noise injection hook)."""
        ways = self._sets[set_index]
        if ways:
            ways.pop(position % len(ways))

    def insert_line(self, set_index: int, tag: int) -> None:
        """Force a line into a set (noise injection hook)."""
        self._fill(set_index, tag)

    def snapshot(self) -> CacheSnapshot:
        return CacheSnapshot(tuple(frozenset(ways) for ways in self._sets))

    def resident_lines(self) -> Tuple[Tuple[int, int], ...]:
        """All resident lines as ``(set_index, tag)`` pairs."""
        out = []
        for index, ways in enumerate(self._sets):
            out.extend((index, tag) for tag in ways)
        return tuple(out)
