"""The simulated Cortex-A53 evaluation platform (§6.1 substitute).

This package replaces the paper's Raspberry Pi 3 testbed with a
microarchitecture simulator exhibiting the documented/inferred behaviours the
experiments depend on:

* L1 data cache: 32 KiB, 4-way set associative, 64-byte lines (128 sets),
  LRU replacement.
* Stride prefetcher: triggers after three equidistant loads, prefetches the
  next block(s) of the stride, and **stops at 4 KiB page boundaries**.
* Branch prediction: per-PC pattern history table of 2-bit counters.
* Bounded in-order speculation: on a mispredicted conditional branch the
  core transiently executes a short window of wrong-path instructions;
  transient loads issue cache fills, but their *results* are not forwarded
  (no register renaming), so an address depending on a transient load never
  issues — the behaviour behind SiSCLoak and the Mspec1 findings (§6.4-6.5).
* A second transient load can issue only when the first one hit in the
  cache (the single load/store pipe stays busy through a miss until the
  branch resolves) — reproducing "in some circumstances Cortex-A53 can
  execute more than one transient load" (§6.5).
* No straight-line speculation past direct unconditional branches (§6.5).
"""

from repro.hw.cache import Cache, CacheConfig, CacheSnapshot
from repro.hw.tlb import Tlb, TlbConfig, TlbSnapshot
from repro.hw.prefetcher import PrefetcherConfig, StridePrefetcher
from repro.hw.predictor import BranchPredictor, PredictorConfig
from repro.hw.state import MachineState, Memory
from repro.hw.core import Core, CoreConfig, ExecutionTrace
from repro.hw import profiles
from repro.hw.hierarchy import CacheHierarchy, HitLevel
from repro.hw.pmc import PerformanceCounters, PmcEvent, PmcReading
from repro.hw.platform import (
    Channel,
    ExperimentOutcome,
    ExperimentPlatform,
    ExperimentResult,
    PlatformConfig,
    StateInputs,
)

__all__ = [
    "Cache",
    "Channel",
    "CacheConfig",
    "CacheSnapshot",
    "PrefetcherConfig",
    "StridePrefetcher",
    "BranchPredictor",
    "PredictorConfig",
    "MachineState",
    "Memory",
    "Core",
    "CoreConfig",
    "ExecutionTrace",
    "ExperimentOutcome",
    "ExperimentPlatform",
    "ExperimentResult",
    "PlatformConfig",
    "StateInputs",
    "Tlb",
    "TlbConfig",
    "TlbSnapshot",
    "profiles",
    "CacheHierarchy",
    "HitLevel",
    "PerformanceCounters",
    "PmcEvent",
    "PmcReading",
]
