"""Pattern-history-table branch predictor (2-bit saturating counters)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PredictorConfig:
    """PHT parameters.

    ``counter_bits`` — width of each saturating counter (2 on the A53-class
    cores this models).
    ``initial``      — initial counter value; the default (weakly not-taken)
    makes an untrained branch predict not-taken.
    """

    counter_bits: int = 2
    initial: int = 1
    entries: int = 512

    @property
    def max_counter(self) -> int:
        return (1 << self.counter_bits) - 1

    @property
    def taken_threshold(self) -> int:
        return 1 << (self.counter_bits - 1)


class BranchPredictor:
    """Per-PC table of saturating counters."""

    def __init__(self, config: Optional[PredictorConfig] = None):
        self.config = config or PredictorConfig()
        self._counters: Dict[int, int] = {}

    def reset(self) -> None:
        self._counters.clear()

    def _index(self, pc: int) -> int:
        return pc % self.config.entries

    def counter(self, pc: int) -> int:
        return self._counters.get(self._index(pc), self.config.initial)

    def predict(self, pc: int) -> bool:
        """Predicted outcome for the branch at ``pc`` (True = taken)."""
        return self.counter(pc) >= self.config.taken_threshold

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter with the resolved outcome."""
        index = self._index(pc)
        value = self._counters.get(index, self.config.initial)
        if taken:
            value = min(value + 1, self.config.max_counter)
        else:
            value = max(value - 1, 0)
        self._counters[index] = value
