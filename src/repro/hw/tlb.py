"""Data micro-TLB model.

§2.3 lists TLB state among the side channels Scam-V can be extended to:
"it is necessary to implement a new module for augmenting input programs
with the relevant observations and to extend the test case executor to
measure the channel".  This module is the executor side of that extension:
a small fully-associative, LRU data micro-TLB (the Cortex-A53 has a
10-entry micro-TLB per side), filled at page granularity by demand *and
transient* accesses — address translation happens before the access is
squashed.

The hardware prefetcher operates on physical addresses and therefore never
touches the TLB; this is also why it stops at page boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional


@dataclass(frozen=True)
class TlbConfig:
    """Micro-TLB parameters."""

    entries: int = 10
    page_size: int = 4096

    def page_of(self, addr: int) -> int:
        return addr // self.page_size


@dataclass(frozen=True)
class TlbSnapshot:
    """The attacker-visible TLB state: the set of resident page numbers."""

    pages: FrozenSet[int]

    def __len__(self) -> int:
        return len(self.pages)


class Tlb:
    """Fully-associative, LRU translation lookaside buffer."""

    def __init__(self, config: Optional[TlbConfig] = None):
        self.config = config or TlbConfig()
        self._entries: List[int] = []  # page numbers, most recent last
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate an address: True on TLB hit; fills on miss."""
        page = self.config.page_of(addr)
        if page in self._entries:
            self._entries.remove(page)
            self._entries.append(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.config.entries:
            self._entries.pop(0)
        self._entries.append(page)
        return False

    def contains_page(self, page: int) -> bool:
        return page in self._entries

    def flush_all(self) -> None:
        self._entries.clear()

    def flush_page(self, page: int) -> None:
        if page in self._entries:
            self._entries.remove(page)

    def snapshot(self) -> TlbSnapshot:
        return TlbSnapshot(frozenset(self._entries))
