"""Performance monitor counters (§6.1).

"The PMC consists of a number of special-purpose registers built into the
processor which track the counts of specific hardware-related activities
like the processor cycles and cache hits."  This module exposes that view
over a :class:`~repro.hw.core.Core`: named event counts, and deltas
between two readings — what a real attacker samples around a victim run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.hw.core import Core


class PmcEvent(enum.Enum):
    """The tracked events (a subset of the ARMv8 PMU event space)."""

    CPU_CYCLES = "cpu_cycles"
    L1D_CACHE_HIT = "l1d_cache_hit"
    L1D_CACHE_MISS = "l1d_cache_miss"
    L1D_TLB_HIT = "l1d_tlb_hit"
    L1D_TLB_MISS = "l1d_tlb_miss"


@dataclass(frozen=True)
class PmcReading:
    """An immutable snapshot of all counters."""

    counts: Dict[str, int]

    def __getitem__(self, event: PmcEvent) -> int:
        return self.counts[event.value]

    def delta(self, earlier: "PmcReading") -> "PmcReading":
        """Event counts accumulated since an earlier reading."""
        return PmcReading(
            {
                name: value - earlier.counts.get(name, 0)
                for name, value in self.counts.items()
            }
        )

    def describe(self) -> str:
        return ", ".join(
            f"{name}={value}" for name, value in sorted(self.counts.items())
        )


class PerformanceCounters:
    """The PMC register file of one core."""

    def __init__(self, core: Core):
        self.core = core

    def read(self) -> PmcReading:
        """Sample every counter (non-destructively)."""
        core = self.core
        return PmcReading(
            {
                PmcEvent.CPU_CYCLES.value: core.cycles,
                PmcEvent.L1D_CACHE_HIT.value: core.cache.hits,
                PmcEvent.L1D_CACHE_MISS.value: core.cache.misses,
                PmcEvent.L1D_TLB_HIT.value: core.tlb.hits,
                PmcEvent.L1D_TLB_MISS.value: core.tlb.misses,
            }
        )

    def measure(self, action) -> PmcReading:
        """Run ``action()`` and return the event deltas it caused."""
        before = self.read()
        action()
        return self.read().delta(before)
