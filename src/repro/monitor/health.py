"""Rule-based health detectors over the runner event stream and metrics.

A thousand-shard campaign fails in ways a progress bar cannot show: one
shard wedges on a pathological solver query, hardware measurements turn
noisy and silently inflate the inconclusive rate, the expression-intern
cache stops hitting after a config change, solver restarts spike.  The
:class:`HealthMonitor` is an event sink that watches for these patterns
and emits typed :class:`~repro.runner.events.HealthEvent` runner events
into the same sink chain — so the progress printer renders them as ``!!``
lines, the metrics bridge counts them, and the ``--events-out`` side file
carries them to ``repro-scamv monitor``.

Detectors (all thresholds in :class:`HealthConfig`):

* ``stalled-shard``     — an in-flight shard exceeds a multiple of the
  median finished-shard duration (needs :meth:`HealthMonitor.tick`, which
  the scheduler poll loop and the live monitor both call).
* ``retry-spike``       — shard retries (crash/hang/timeout) cross a
  budget within one campaign.
* ``shard-failure``     — a shard exhausted its retry budget (critical).
* ``inconclusive-drift``— the recent-window inconclusive rate drifts above
  the campaign baseline (noisy hardware measurements).
* ``solver-restarts``   — SMT restart/solve ratio spikes (from the
  metrics snapshot's ``span.smt.*`` histograms).
* ``cache-collapse``    — an intern-registry cache's hit rate collapses
  under real traffic (from ``cache.*.hits/misses`` counters).

The monitor is observational: it never mutates the run, and detectors are
deduplicated so one sick condition produces one event (``inconclusive-
drift`` re-arms if the rate recovers).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.runner.events import (
    CampaignFinished,
    EventSink,
    HealthEvent,
    RunnerEvent,
    ShardFailed,
    ShardFinished,
    ShardRetried,
    ShardStarted,
)

__all__ = ["HealthConfig", "HealthMonitor"]


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds; defaults sized for scaled paper campaigns."""

    #: An in-flight shard is stalled past ``factor * median`` finished
    #: duration, once ``min_samples`` shards have finished and the median
    #: estimate is at least ``min_seconds`` (guards tiny-campaign noise).
    stall_factor: float = 4.0
    stall_min_samples: int = 3
    stall_min_seconds: float = 0.05
    #: Retries (timeouts, crashes, silent deaths) per campaign before the
    #: ``retry-spike`` detector fires.
    retry_threshold: int = 3
    #: ``inconclusive-drift``: recent-window rate must exceed the campaign
    #: baseline by this much, with at least ``min_experiments`` total and
    #: a window of the last ``window_shards`` shards.
    inconclusive_drift: float = 0.15
    inconclusive_min_experiments: int = 40
    inconclusive_window_shards: int = 8
    #: ``solver-restarts``: restart/solve ratio threshold and the minimum
    #: solve count before the ratio means anything.
    solver_restart_ratio: float = 0.5
    solver_min_solves: int = 20
    #: ``cache-collapse``: hit-rate floor and minimum hits+misses traffic.
    cache_hit_floor: float = 0.2
    cache_min_traffic: int = 500


@dataclass
class _CampaignHealth:
    """Per-campaign detector state."""

    experiments: int = 0
    inconclusive: int = 0
    window: Deque[Tuple[int, int]] = field(default_factory=deque)
    retries: int = 0
    drift_armed: bool = True


class HealthMonitor:
    """An event sink that chains health detection into a sink pipeline.

    ``chain`` receives every incoming event unchanged, then any
    :class:`HealthEvent` a detector derives from it.  ``metrics_source``
    (a zero-argument callable returning a metrics snapshot dict, or None)
    feeds the snapshot-based detectors; it defaults to the live telemetry
    registry and is consulted on every finished shard.  ``clock`` is
    injectable for tests.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        chain: Optional[EventSink] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics_source: Optional[Callable[[], Optional[Dict]]] = None,
    ):
        self.config = config or HealthConfig()
        self.chain = chain
        self.clock = clock
        if metrics_source is None:
            metrics_source = _registry_snapshot
        self.metrics_source = metrics_source
        #: Every health event emitted, with its clock timestamp.
        self.log: List[Tuple[float, HealthEvent]] = []
        self._campaigns: Dict[str, _CampaignHealth] = {}
        self._inflight: Dict[Tuple[str, int], float] = {}
        self._durations: List[float] = []
        self._fired: Set[Tuple[str, ...]] = set()

    # -- sink protocol -------------------------------------------------------

    def __call__(self, event: RunnerEvent) -> None:
        if self.chain is not None:
            self.chain(event)
        self._observe(event)

    def _emit(self, event: HealthEvent) -> None:
        self.log.append((self.clock(), event))
        if self.chain is not None:
            self.chain(event)

    def _fire_once(self, key: Tuple[str, ...], event: HealthEvent) -> None:
        if key in self._fired:
            return
        self._fired.add(key)
        self._emit(event)

    # -- event dispatch ------------------------------------------------------

    def _campaign(self, name: str) -> _CampaignHealth:
        state = self._campaigns.get(name)
        if state is None:
            state = self._campaigns[name] = _CampaignHealth()
        return state

    def _observe(self, event: RunnerEvent) -> None:
        if isinstance(event, ShardStarted):
            self._inflight[(event.campaign, event.shard_id)] = self.clock()
        elif isinstance(event, ShardFinished):
            self._inflight.pop((event.campaign, event.shard_id), None)
            if not event.cached:
                self._durations.append(event.duration)
                state = self._campaign(event.campaign)
                state.experiments += event.experiments
                state.inconclusive += event.inconclusive
                state.window.append((event.experiments, event.inconclusive))
                while (
                    len(state.window)
                    > self.config.inconclusive_window_shards
                ):
                    state.window.popleft()
                self._check_inconclusive(event.campaign, state)
                self._check_metrics()
            self.tick()
        elif isinstance(event, ShardRetried):
            self._inflight.pop((event.campaign, event.shard_id), None)
            state = self._campaign(event.campaign)
            state.retries += 1
            if state.retries == self.config.retry_threshold:
                self._fire_once(
                    ("retry-spike", event.campaign),
                    HealthEvent(
                        detector="retry-spike",
                        severity="warning",
                        message=(
                            f"{state.retries} shard retries "
                            f"(last: {event.reason})"
                        ),
                        campaign=event.campaign,
                        shard_id=event.shard_id,
                    ),
                )
        elif isinstance(event, ShardFailed):
            self._inflight.pop((event.campaign, event.shard_id), None)
            self._emit(
                HealthEvent(
                    detector="shard-failure",
                    severity="critical",
                    message=(
                        f"shard exhausted its retry budget after "
                        f"{event.attempts} attempts: {event.reason}"
                    ),
                    campaign=event.campaign,
                    shard_id=event.shard_id,
                )
            )
        elif isinstance(event, CampaignFinished):
            # A finished campaign cannot stall; drop leftovers defensively.
            for key in [
                k for k in self._inflight if k[0] == event.campaign
            ]:
                self._inflight.pop(key, None)

    # -- detectors -----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """Run the stalled-shard watchdog against the in-flight set.

        Call sites: the scheduler's poll loop (live, in-process) and the
        terminal monitor's refresh loop (out-of-process, wall clock).
        """
        cfg = self.config
        if len(self._durations) < cfg.stall_min_samples:
            return
        ordered = sorted(self._durations)
        median = ordered[len(ordered) // 2]
        threshold = max(cfg.stall_min_seconds, cfg.stall_factor * median)
        now = now if now is not None else self.clock()
        for (campaign, shard_id), since in list(self._inflight.items()):
            elapsed = now - since
            if elapsed <= threshold:
                continue
            self._fire_once(
                ("stalled-shard", campaign, str(shard_id)),
                HealthEvent(
                    detector="stalled-shard",
                    severity="warning",
                    message=(
                        f"no result for {elapsed:.1f}s "
                        f"(median shard takes {median:.1f}s)"
                    ),
                    campaign=campaign,
                    shard_id=shard_id,
                ),
            )

    def _check_inconclusive(
        self, campaign: str, state: _CampaignHealth
    ) -> None:
        cfg = self.config
        if state.experiments < cfg.inconclusive_min_experiments:
            return
        recent_exp = sum(e for e, _ in state.window)
        if recent_exp == 0:
            return
        baseline = state.inconclusive / state.experiments
        recent = sum(i for _, i in state.window) / recent_exp
        drifted = recent - baseline > cfg.inconclusive_drift
        if drifted and state.drift_armed:
            state.drift_armed = False
            self._emit(
                HealthEvent(
                    detector="inconclusive-drift",
                    severity="warning",
                    message=(
                        f"recent inconclusive rate {100 * recent:.1f}% vs "
                        f"{100 * baseline:.1f}% baseline — noisy hardware "
                        "measurements?"
                    ),
                    campaign=campaign,
                ),
            )
        elif not drifted and recent - baseline <= cfg.inconclusive_drift / 2:
            state.drift_armed = True

    def observe_metrics(self, snapshot: Optional[Dict]) -> None:
        """Run the snapshot-based detectors over one metrics snapshot."""
        if not snapshot:
            return
        self._check_solver(snapshot)
        self._check_caches(snapshot)

    def _check_metrics(self) -> None:
        if self.metrics_source is None:
            return
        self.observe_metrics(self.metrics_source())

    def _check_solver(self, snapshot: Dict) -> None:
        cfg = self.config
        solves = _histogram_count(snapshot, "span.smt.solve.seconds")
        restarts = _histogram_count(snapshot, "span.smt.restart.seconds")
        if solves < cfg.solver_min_solves:
            return
        ratio = restarts / solves
        if ratio > cfg.solver_restart_ratio:
            self._fire_once(
                ("solver-restarts",),
                HealthEvent(
                    detector="solver-restarts",
                    severity="warning",
                    message=(
                        f"{restarts} solver restarts over {solves} solves "
                        f"({100 * ratio:.0f}%) — timeout/restart spike"
                    ),
                ),
            )

    def _check_caches(self, snapshot: Dict) -> None:
        cfg = self.config
        hits: Dict[str, int] = {}
        misses: Dict[str, int] = {}
        for name, entry in snapshot.items():
            if not name.startswith("cache.") or entry.get("type") != "counter":
                continue
            parts = name.split(".")
            if len(parts) != 3:
                continue
            if parts[2] == "hits":
                hits[parts[1]] = int(entry.get("value", 0))
            elif parts[2] == "misses":
                misses[parts[1]] = int(entry.get("value", 0))
        for cache in sorted(set(hits) | set(misses)):
            traffic = hits.get(cache, 0) + misses.get(cache, 0)
            if traffic < cfg.cache_min_traffic:
                continue
            rate = hits.get(cache, 0) / traffic
            if rate < cfg.cache_hit_floor:
                self._fire_once(
                    ("cache-collapse", cache),
                    HealthEvent(
                        detector="cache-collapse",
                        severity="warning",
                        message=(
                            f"intern cache {cache!r} hit rate collapsed to "
                            f"{100 * rate:.1f}% over {traffic} lookups"
                        ),
                    ),
                )


def _registry_snapshot() -> Optional[Dict]:
    from repro.telemetry import metrics as tmetrics

    return tmetrics.snapshot() if tmetrics.enabled() else None


def _histogram_count(snapshot: Dict, name: str) -> int:
    entry = snapshot.get(name)
    if not isinstance(entry, dict) or entry.get("type") != "histogram":
        return 0
    return int(entry.get("count", 0))
