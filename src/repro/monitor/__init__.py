"""Live campaign observability: coverage ledger, health, monitor, dashboard.

Long-running relational searches are only operable when you can watch them
converge.  This package turns a campaign from a black box into something
you can observe while it runs and audit after it ends:

* :mod:`repro.monitor.ledger`    — a mergeable, checkpoint-persisted record
  of which supporting-model partitions (Mpc path pairs, Mline cache-set
  classes, ...) each test case exercised, with a rarefaction-style
  convergence estimator ("saturated / converging / exploring").
* :mod:`repro.monitor.health`    — rule-based detectors over the runner
  event stream and metrics snapshots, emitting typed
  :class:`~repro.runner.events.HealthEvent` runner events.
* :mod:`repro.monitor.live`      — ``repro-scamv monitor``: an in-terminal
  dashboard tailing the checkpoint journal and the ``--events-out`` side
  file of a running (or finished) campaign.
* :mod:`repro.monitor.dashboard` — a self-contained single-file HTML
  dashboard per campaign (inline CSS/SVG, opens offline).

Everything here is strictly out-of-band of the deterministic campaign
results: the ledger is a pure function of the (seed-determined) experiment
records, and monitoring never feeds back into generation.
"""

from repro.monitor.dashboard import build_dashboard_html, write_dashboard
from repro.monitor.health import HealthConfig, HealthMonitor
from repro.monitor.ledger import (
    CoverageLedger,
    LEDGER_VERSION,
    ModelCoverage,
    merge_ledger_docs,
    overall_verdict,
)
from repro.monitor.live import CampaignView, load_views, monitor, render

__all__ = [
    "CampaignView",
    "CoverageLedger",
    "HealthConfig",
    "HealthMonitor",
    "LEDGER_VERSION",
    "ModelCoverage",
    "build_dashboard_html",
    "load_views",
    "merge_ledger_docs",
    "monitor",
    "overall_verdict",
    "render",
    "write_dashboard",
]
