"""The coverage ledger: which partitions a campaign has exercised so far.

Supporting observational models partition the input space into coarse,
enumerable classes (§4.1); campaign effectiveness hinges on *how* that
space gets covered over time.  The ledger records, per supporting model,
which partition every generated test case landed in — keyed by the same
:meth:`~repro.core.coverage.CoverageSampler.classify` hook that steers
generation — together with per-partition conclusive / inconclusive /
counterexample tallies and where in the campaign each partition was first
discovered.

Design constraints, in order:

* **Mergeable and order-invariant.**  Each shard contributes a ledger
  delta; deltas travel through ``ShardResult`` (out-of-band of
  ``deterministic_counters``) and merge associatively and commutatively:
  tallies add, first-seen positions take the minimum, sample positions
  union.  A 1-worker and a 4-worker run of the same seed therefore produce
  byte-identical merged ledgers (``json.dumps(..., sort_keys=True)``).
* **Checkpoint-persisted.**  The JSON form rides inside the v2 checkpoint
  journal (an additive key — old entries simply carry no ledger), so
  ``repro-scamv monitor`` can rebuild coverage from the journal alone.
* **Self-describing.**  :data:`LEDGER_SCHEMA` pins the wrapper document
  written by ``--ledger-out``; ``python -m repro.monitor.ledger FILE``
  validates it (CI does).

The convergence estimator is rarefaction-style: order every sample by its
campaign-global position ``(program_index, test_index)``, then ask how many
partitions were first discovered within the trailing window.  No new
partitions → *saturated*; a trickle → *converging*; otherwise *exploring*.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LEDGER_VERSION = 1

#: Verdicts, from most to least finished.
VERDICT_SATURATED = "saturated"
VERDICT_CONVERGING = "converging"
VERDICT_EXPLORING = "exploring"


@dataclass
class PartitionTally:
    """Per-partition outcome counts and discovery position."""

    conclusive: int = 0
    inconclusive: int = 0
    counterexamples: int = 0
    #: ``(program_index, test_index)`` of the first sample in this
    #: partition, in campaign-global order; None only transiently.
    first_seen: Optional[Tuple[int, int]] = None

    @property
    def samples(self) -> int:
        return self.conclusive + self.inconclusive + self.counterexamples

    def merge(self, other: "PartitionTally") -> "PartitionTally":
        seen = [
            s for s in (self.first_seen, other.first_seen) if s is not None
        ]
        return PartitionTally(
            conclusive=self.conclusive + other.conclusive,
            inconclusive=self.inconclusive + other.inconclusive,
            counterexamples=self.counterexamples + other.counterexamples,
            first_seen=min(seen) if seen else None,
        )

    def to_json(self) -> Dict:
        return {
            "conclusive": self.conclusive,
            "inconclusive": self.inconclusive,
            "counterexamples": self.counterexamples,
            "first_seen": (
                list(self.first_seen) if self.first_seen is not None else None
            ),
        }

    @classmethod
    def from_json(cls, doc: Mapping) -> "PartitionTally":
        seen = doc.get("first_seen")
        return cls(
            conclusive=int(doc.get("conclusive", 0)),
            inconclusive=int(doc.get("inconclusive", 0)),
            counterexamples=int(doc.get("counterexamples", 0)),
            first_seen=tuple(seen) if seen is not None else None,
        )


@dataclass
class ModelCoverage:
    """One model's slice of a convergence report."""

    model: str
    partitions: int
    space: Optional[int]
    samples: int
    conclusive: int
    inconclusive: int
    counterexamples: int
    window: int
    new_in_window: int
    verdict: str
    #: ``(sample ordinal, cumulative partitions discovered)`` — the
    #: rarefaction curve, one point per discovery.
    discovery_curve: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def coverage_fraction(self) -> Optional[float]:
        if not self.space:
            return None
        return min(1.0, self.partitions / self.space)

    def describe(self) -> str:
        if self.space:
            covered = (
                f"{self.partitions}/{self.space} classes "
                f"({100.0 * (self.coverage_fraction or 0.0):.1f}%)"
            )
        else:
            covered = f"{self.partitions} partitions (space unbounded)"
        return (
            f"{self.model}: {covered}, {self.samples} samples, "
            f"{self.new_in_window} new in last {self.window} -> {self.verdict}"
        )


def overall_verdict(per_model: Mapping[str, ModelCoverage]) -> str:
    """The campaign-level verdict: the least finished model wins."""
    order = [VERDICT_SATURATED, VERDICT_CONVERGING, VERDICT_EXPLORING]
    worst = VERDICT_SATURATED
    for coverage in per_model.values():
        if order.index(coverage.verdict) > order.index(worst):
            worst = coverage.verdict
    return worst


class CoverageLedger:
    """Mergeable coverage record of one campaign (or one shard's delta)."""

    def __init__(
        self,
        campaign: str = "",
        spaces: Optional[Mapping[str, Optional[int]]] = None,
    ):
        self.campaign = campaign
        #: model -> partition-space size (None when not enumerable).
        self.spaces: Dict[str, Optional[int]] = dict(spaces or {})
        #: model -> partition key -> tally.
        self.models: Dict[str, Dict[str, PartitionTally]] = {}
        #: program index -> sorted test indices that produced a sample.
        self._positions: Dict[int, List[int]] = {}

    # -- recording -----------------------------------------------------------

    def record(
        self,
        classes: Mapping[str, Sequence[str]],
        outcome: str,
        program_index: int,
        test_index: int,
    ) -> None:
        """Record one classified test case.

        ``classes`` is the :meth:`CoverageSampler.classify` output;
        ``outcome`` an :class:`~repro.hw.platform.ExperimentOutcome` value
        string.  The ``(program_index, test_index)`` pair is the sample's
        campaign-global position — it must be unique per sample.
        """
        position = (program_index, test_index)
        tests = self._positions.setdefault(program_index, [])
        if test_index not in tests:
            tests.append(test_index)
            tests.sort()
        for model, keys in classes.items():
            partitions = self.models.setdefault(model, {})
            for key in keys:
                tally = partitions.get(key)
                if tally is None:
                    tally = partitions[key] = PartitionTally()
                if outcome == "inconclusive":
                    tally.inconclusive += 1
                elif outcome == "counterexample":
                    tally.counterexamples += 1
                else:
                    tally.conclusive += 1
                if tally.first_seen is None or position < tally.first_seen:
                    tally.first_seen = position

    # -- aggregate views -----------------------------------------------------

    @property
    def samples(self) -> int:
        return sum(len(tests) for tests in self._positions.values())

    def sample_positions(self) -> List[Tuple[int, int]]:
        """Every recorded sample position, in campaign-global order."""
        return sorted(
            (program, test)
            for program, tests in self._positions.items()
            for test in tests
        )

    def convergence(
        self,
        window: Optional[int] = None,
        rate_threshold: float = 0.1,
        min_samples: int = 8,
    ) -> Dict[str, ModelCoverage]:
        """The rarefaction-style convergence estimate, per model.

        ``window`` defaults to a quarter of the samples (at least
        ``min_samples``).  With fewer than ``min_samples`` samples a model
        is always *exploring* — there is no evidence of anything else.
        """
        ordinal = {
            position: index + 1
            for index, position in enumerate(self.sample_positions())
        }
        total = len(ordinal)
        out: Dict[str, ModelCoverage] = {}
        for model in sorted(self.models):
            partitions = self.models[model]
            discoveries = sorted(
                ordinal[tally.first_seen]
                for tally in partitions.values()
                if tally.first_seen in ordinal
            )
            curve = [
                (sample, index + 1)
                for index, sample in enumerate(discoveries)
            ]
            win = window if window is not None else max(min_samples, total // 4)
            new = sum(1 for sample in discoveries if sample > total - win)
            if total < min_samples:
                verdict = VERDICT_EXPLORING
            elif new == 0:
                verdict = VERDICT_SATURATED
            elif new / win <= rate_threshold:
                verdict = VERDICT_CONVERGING
            else:
                verdict = VERDICT_EXPLORING
            out[model] = ModelCoverage(
                model=model,
                partitions=len(partitions),
                space=self.spaces.get(model),
                samples=sum(t.samples for t in partitions.values()),
                conclusive=sum(t.conclusive for t in partitions.values()),
                inconclusive=sum(t.inconclusive for t in partitions.values()),
                counterexamples=sum(
                    t.counterexamples for t in partitions.values()
                ),
                window=win,
                new_in_window=new,
                verdict=verdict,
                discovery_curve=curve,
            )
        return out

    def verdict(self, **kwargs) -> str:
        return overall_verdict(self.convergence(**kwargs))

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "CoverageLedger") -> "CoverageLedger":
        """Order-invariant merge: associative, commutative, pure."""
        merged = CoverageLedger(
            campaign=self.campaign or other.campaign,
            spaces={**other.spaces, **self.spaces},
        )
        for source in (self, other):
            for program, tests in source._positions.items():
                mine = merged._positions.setdefault(program, [])
                merged._positions[program] = sorted(set(mine) | set(tests))
        for source in (self, other):
            for model, partitions in source.models.items():
                mine = merged.models.setdefault(model, {})
                for key, tally in partitions.items():
                    existing = mine.get(key)
                    mine[key] = (
                        tally.merge(existing)
                        if existing is not None
                        else PartitionTally(
                            conclusive=tally.conclusive,
                            inconclusive=tally.inconclusive,
                            counterexamples=tally.counterexamples,
                            first_seen=tally.first_seen,
                        )
                    )
        return merged

    # -- (de)serialization ---------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "version": LEDGER_VERSION,
            "campaign": self.campaign,
            "samples": self.samples,
            "spaces": {
                model: self.spaces[model] for model in sorted(self.spaces)
            },
            "models": {
                model: {
                    key: partitions[key].to_json()
                    for key in sorted(partitions)
                }
                for model, partitions in sorted(self.models.items())
            },
            "positions": {
                str(program): list(tests)
                for program, tests in sorted(self._positions.items())
            },
        }

    @classmethod
    def from_json(cls, doc: Mapping) -> "CoverageLedger":
        ledger = cls(
            campaign=str(doc.get("campaign", "")),
            spaces=dict(doc.get("spaces") or {}),
        )
        for model, partitions in (doc.get("models") or {}).items():
            ledger.models[model] = {
                key: PartitionTally.from_json(entry)
                for key, entry in partitions.items()
            }
        for program, tests in (doc.get("positions") or {}).items():
            ledger._positions[int(program)] = sorted(int(t) for t in tests)
        return ledger

    def canonical(self) -> str:
        """The canonical byte representation (worker-count invariant)."""
        return json.dumps(self.to_json(), sort_keys=True)


def merge_ledger_docs(
    docs: Iterable[Optional[Mapping]],
) -> Optional[Dict]:
    """Merge JSON ledger deltas (e.g. off ``ShardResult.ledger``)."""
    merged: Optional[CoverageLedger] = None
    for doc in docs:
        if not doc:
            continue
        ledger = CoverageLedger.from_json(doc)
        merged = ledger if merged is None else merged.merge(ledger)
    return merged.to_json() if merged is not None else None


# -- the --ledger-out wrapper document and its schema -------------------------

_TALLY_SCHEMA = {
    "type": "object",
    "required": ["conclusive", "inconclusive", "counterexamples"],
    "properties": {
        "conclusive": {"type": "integer", "minimum": 0},
        "inconclusive": {"type": "integer", "minimum": 0},
        "counterexamples": {"type": "integer", "minimum": 0},
        "first_seen": {
            "type": ["array", "null"],
            "items": {"type": "integer", "minimum": 0},
        },
    },
}

#: Schema of one campaign's ledger document (``CoverageLedger.to_json``).
CAMPAIGN_LEDGER_SCHEMA = {
    "type": "object",
    "required": ["version", "campaign", "models", "positions"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "campaign": {"type": "string"},
        "samples": {"type": "integer", "minimum": 0},
        "spaces": {
            "type": "object",
            "additionalProperties": {
                "type": ["integer", "null"],
                "minimum": 0,
            },
        },
        "models": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "additionalProperties": _TALLY_SCHEMA,
            },
        },
        "positions": {
            "type": "object",
            "additionalProperties": {
                "type": "array",
                "items": {"type": "integer", "minimum": 0},
            },
        },
    },
}

#: Schema of the ``--ledger-out`` file: a stamped set of campaign ledgers.
LEDGER_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro coverage ledger",
    "type": "object",
    "required": ["version", "campaigns"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "meta": {"type": "object"},
        "campaigns": {
            "type": "object",
            "additionalProperties": CAMPAIGN_LEDGER_SCHEMA,
        },
    },
}


def write_ledger_file(
    path: str,
    ledgers: Mapping[str, Optional[Mapping]],
    meta: Optional[Dict] = None,
) -> Dict:
    """Write the stamped multi-campaign ledger document; returns it."""
    from repro.telemetry.export import stamp

    doc = {
        "version": LEDGER_VERSION,
        "meta": meta if meta is not None else stamp(),
        "campaigns": {
            name: dict(ledger)
            for name, ledger in sorted(ledgers.items())
            if ledger
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def validate_ledger_file(path: str) -> Dict:
    """Load and schema-validate a ``--ledger-out`` file; returns it."""
    from repro.telemetry.schema import validate

    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate(doc, LEDGER_SCHEMA)
    return doc


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print(
            "usage: python -m repro.monitor.ledger LEDGER.json",
            file=sys.stderr,
        )
        return 2
    try:
        doc = validate_ledger_file(argv[0])
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"{argv[0]}: INVALID — {exc}", file=sys.stderr)
        return 1
    campaigns = doc.get("campaigns", {})
    total = sum(
        len(entry.get("models", {})) for entry in campaigns.values()
    )
    print(
        f"{argv[0]}: valid ({len(campaigns)} campaign(s), "
        f"{total} model coverage table(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
