"""``repro-scamv monitor``: an in-terminal view of a (running) campaign.

The monitor is a *reader*: it tails the v2 checkpoint journal (the source
of truth for completed shards and their coverage-ledger deltas) and, when
available, the ``--events-out`` JSONL side file (shard starts/retries,
health events, wall-clock timestamps).  It never talks to the scheduler —
a campaign can be watched from another terminal, another machine sharing
the filesystem, or after the fact.

Rendering degrades gracefully: with a TTY and ``--follow`` the screen
redraws in place (ANSI home+clear); otherwise each refresh is a plain
block of text, one after another, suitable for logs and CI.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TextIO, Tuple

from repro.monitor.ledger import CoverageLedger, merge_ledger_docs, overall_verdict
from repro.runner.events import read_events_jsonl

#: Shard-grid glyphs.
GLYPH_DONE = "#"
GLYPH_DONE_CEX = "C"
GLYPH_RUNNING = "R"
GLYPH_FAILED = "X"
GLYPH_PENDING = "."


@dataclass
class CampaignView:
    """Everything the monitor knows about one campaign."""

    name: str
    index: int
    #: shard id -> (experiments, counterexamples, inconclusive, duration,
    #: cached) of completed shards, from the journal.
    done: Dict[int, Tuple[int, int, int, float, bool]] = field(
        default_factory=dict
    )
    #: Total shard count (from CampaignScheduled; falls back to max id+1).
    total_shards: Optional[int] = None
    running: Set[int] = field(default_factory=set)
    failed: Set[int] = field(default_factory=set)
    ledger: Optional[Dict] = None
    finished: bool = False
    #: HealthEvent documents, in stream order.
    health: List[Dict] = field(default_factory=list)
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None

    @property
    def shards_total(self) -> int:
        if self.total_shards is not None:
            return self.total_shards
        known = set(self.done) | self.running | self.failed
        return max(known) + 1 if known else 0

    @property
    def experiments(self) -> int:
        return sum(entry[0] for entry in self.done.values())

    @property
    def counterexamples(self) -> int:
        return sum(entry[1] for entry in self.done.values())

    @property
    def inconclusive(self) -> int:
        return sum(entry[2] for entry in self.done.values())

    def median_duration(self) -> Optional[float]:
        fresh = sorted(
            entry[3] for entry in self.done.values() if not entry[4]
        )
        return fresh[len(fresh) // 2] if fresh else None

    def eta_seconds(self) -> Optional[float]:
        """Naive remaining-work estimate: remaining x median / parallelism."""
        if self.finished:
            return 0.0
        median = self.median_duration()
        if median is None:
            return None
        remaining = self.shards_total - len(self.done) - len(self.failed)
        if remaining <= 0:
            return 0.0
        return median * remaining / max(1, len(self.running))


def _campaign_name(key: str) -> str:
    # campaign_key() format: "name|seed=...|..." — the name never holds "|".
    return key.split("|", 1)[0]


def load_journal_views(path: str) -> Dict[str, CampaignView]:
    """Build campaign views from the raw checkpoint journal.

    Parses journal lines as plain JSON — deliberately *not* via
    :func:`repro.runner.checkpoint.CheckpointJournal.load`, which
    reassembles every generated program (far too heavy to run once per
    refresh, and it needs the campaign configs the monitor doesn't have).
    """
    views: Dict[str, CampaignView] = {}
    ledgers: Dict[str, List[Dict]] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return views
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # partial trailing append
        if not isinstance(entry, dict) or entry.get("v") != 2:
            continue
        shard = entry.get("shard")
        key = entry.get("key")
        if not isinstance(shard, dict) or not isinstance(key, str):
            continue
        name = _campaign_name(key)
        view = views.get(name)
        if view is None:
            view = views[name] = CampaignView(
                name=name, index=int(entry.get("campaign", 0))
            )
        stats = shard.get("stats") or {}
        view.done[int(shard.get("shard_id", -1))] = (
            int(stats.get("experiments", 0)),
            int(stats.get("counterexamples", 0)),
            int(stats.get("inconclusive", 0)),
            float(shard.get("duration", 0.0)),
            False,
        )
        ledger = shard.get("ledger")
        if ledger:
            ledgers.setdefault(name, []).append(ledger)
    for name, docs in ledgers.items():
        views[name].ledger = merge_ledger_docs(docs)
    return views


def apply_events(
    views: Dict[str, CampaignView], events: List[Dict]
) -> Dict[str, CampaignView]:
    """Overlay the ``--events-out`` stream onto journal-derived views."""
    for doc in events:
        kind = doc.get("event")
        name = doc.get("campaign")
        if not isinstance(name, str) or not name:
            continue
        view = views.get(name)
        if view is None:
            view = views[name] = CampaignView(name=name, index=len(views))
        ts = doc.get("ts")
        if isinstance(ts, (int, float)):
            if view.first_ts is None:
                view.first_ts = float(ts)
            view.last_ts = float(ts)
        if kind == "CampaignScheduled":
            view.total_shards = int(doc.get("shards", 0))
        elif kind == "ShardStarted":
            shard_id = int(doc.get("shard_id", -1))
            if shard_id not in view.done:
                view.running.add(shard_id)
        elif kind == "ShardFinished":
            shard_id = int(doc.get("shard_id", -1))
            view.running.discard(shard_id)
            view.failed.discard(shard_id)
            if shard_id not in view.done:
                view.done[shard_id] = (
                    int(doc.get("experiments", 0)),
                    int(doc.get("counterexamples", 0)),
                    int(doc.get("inconclusive", 0)),
                    float(doc.get("duration", 0.0)),
                    bool(doc.get("cached", False)),
                )
        elif kind == "ShardRetried":
            view.running.discard(int(doc.get("shard_id", -1)))
        elif kind == "ShardFailed":
            shard_id = int(doc.get("shard_id", -1))
            view.running.discard(shard_id)
            view.failed.add(shard_id)
        elif kind == "CampaignFinished":
            view.finished = True
            view.running.clear()
        elif kind == "HealthEvent":
            view.health.append(doc)
    return views


def load_views(
    journal_path: str, events_path: Optional[str] = None
) -> Dict[str, CampaignView]:
    views = load_journal_views(journal_path)
    if events_path:
        apply_events(views, read_events_jsonl(events_path))
    return views


# -- rendering ----------------------------------------------------------------


def _shard_grid(view: CampaignView, width: int = 64) -> List[str]:
    total = view.shards_total
    glyphs = []
    for shard_id in range(total):
        if shard_id in view.failed:
            glyphs.append(GLYPH_FAILED)
        elif shard_id in view.done:
            _, cex, _, _, _ = view.done[shard_id]
            glyphs.append(GLYPH_DONE_CEX if cex else GLYPH_DONE)
        elif shard_id in view.running:
            glyphs.append(GLYPH_RUNNING)
        else:
            glyphs.append(GLYPH_PENDING)
    text = "".join(glyphs)
    return [text[i : i + width] for i in range(0, len(text), width)] or [""]


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(fraction * width))
    filled = max(0, min(width, filled))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "eta: n/a"
    if seconds <= 0:
        return "eta: done"
    if seconds < 60:
        return f"eta: {seconds:.0f}s"
    return f"eta: {seconds / 60:.1f}m"


def render_campaign(view: CampaignView) -> List[str]:
    lines: List[str] = []
    total = view.shards_total
    state = "finished" if view.finished else "running"
    lines.append(
        f"== {view.name} ({state}: {len(view.done)}/{total} shards, "
        f"{view.counterexamples} counterexamples, "
        f"{view.experiments} experiments, "
        f"{len(view.failed)} failed) {_format_eta(view.eta_seconds())}"
    )
    for row in _shard_grid(view):
        lines.append(f"   {row}")
    if view.ledger is not None:
        coverage = CoverageLedger.from_json(view.ledger).convergence()
        for model in sorted(coverage):
            cov = coverage[model]
            fraction = cov.coverage_fraction
            if fraction is not None:
                bar = f"{_bar(fraction)} {100 * fraction:5.1f}%"
                detail = f"{cov.partitions}/{cov.space} classes"
            else:
                bar = f"{_bar(1.0 if cov.partitions else 0.0)}   n/a"
                detail = f"{cov.partitions} partitions"
            lines.append(
                f"   {model:<12} {bar}  {detail}, "
                f"{cov.samples} samples -> {cov.verdict}"
            )
        lines.append(
            f"   convergence: {overall_verdict(coverage)} "
            f"(window of last {max(c.window for c in coverage.values())} "
            "samples)"
            if coverage
            else "   convergence: no samples yet"
        )
    else:
        lines.append("   coverage: no ledger in journal (monitor off?)")
    for doc in view.health[-5:]:
        shard = doc.get("shard_id")
        where = f" (shard {shard})" if shard is not None else ""
        lines.append(
            f"   !! {doc.get('detector')} {doc.get('severity')}: "
            f"{doc.get('message')}{where}"
        )
    return lines


def render(views: Dict[str, CampaignView], clock=time.strftime) -> str:
    header = f"repro-scamv monitor — {clock('%H:%M:%S')}"
    lines = [header, "=" * len(header)]
    if not views:
        lines.append("(no campaigns in journal yet)")
    for name in sorted(views):
        lines.extend(render_campaign(views[name]))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def monitor(
    journal_path: str,
    events_path: Optional[str] = None,
    follow: bool = False,
    interval: float = 2.0,
    stream: Optional[TextIO] = None,
    max_refreshes: Optional[int] = None,
) -> int:
    """Render the monitor once, or repeatedly with ``follow``.

    Returns a CLI exit code: 1 when the journal doesn't exist in
    once-mode (nothing to show), else 0.  ``max_refreshes`` bounds the
    follow loop for tests.
    """
    out = stream if stream is not None else sys.stdout
    is_tty = hasattr(out, "isatty") and out.isatty()
    refreshes = 0
    while True:
        exists = os.path.exists(journal_path)
        if not exists and not follow:
            print(
                f"monitor: checkpoint journal not found: {journal_path}",
                file=sys.stderr,
            )
            return 1
        views = load_views(journal_path, events_path)
        text = render(views)
        if follow and is_tty:
            # Home + clear-to-end keeps the dashboard in place without
            # flicker; plain streams just get stacked refreshes.
            out.write("\x1b[H\x1b[2J")
        out.write(text)
        out.flush()
        refreshes += 1
        if not follow:
            return 0
        if max_refreshes is not None and refreshes >= max_refreshes:
            return 0
        if views and all(view.finished for view in views.values()):
            return 0
        time.sleep(interval)
