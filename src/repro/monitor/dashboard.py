"""Self-contained single-file HTML dashboard for one campaign.

The exporter renders everything server-side into one HTML document with an
inline ``<style>`` block and inline SVG — no external scripts, stylesheets,
fonts, or network fetches — so the file can be archived as a CI artifact,
attached to an issue, or opened from disk years later and still look the
same.

Sections (each rendered only when its data is present):

* summary cards        — experiments, counterexamples, inconclusive rate,
  convergence verdict
* coverage             — per supporting model: coverage bar, a heatmap over
  the partition space (e.g. the 128 Mline cache-set classes) shaded by
  sample depth, and the rarefaction discovery curve as inline SVG
* phase time breakdown — the ``repro-scamv report`` table
  (:class:`repro.telemetry.report.TraceReport`) with self-time bars
* health timeline      — every :class:`~repro.runner.events.HealthEvent`
  the run produced, in stream order
* triage clusters      — distinct violations by root-cause signature, when
  the campaign ran with triage

Entry points: :func:`write_dashboard` (scheduler/driver, from a
:class:`~repro.pipeline.result.CampaignResult`) and
:func:`build_dashboard_html` (CLI ``report --html``, from whatever subset
of inputs exists).
"""

from __future__ import annotations

import html
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.monitor.ledger import CoverageLedger, ModelCoverage, overall_verdict

__all__ = ["build_dashboard_html", "dashboard_path_for", "write_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1c2733; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1c2733; }
h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #c5ced6; padding: 0.25em 0.6em;
         font-size: 0.85em; text-align: left; }
th { background: #eef2f5; }
.cards { display: flex; gap: 1em; flex-wrap: wrap; }
.card { border: 1px solid #c5ced6; border-radius: 6px;
        padding: 0.6em 1.2em; min-width: 8em; }
.card .value { font-size: 1.6em; font-weight: 600; }
.card .label { font-size: 0.75em; color: #5b6b7a; text-transform: uppercase; }
.verdict-saturated { color: #1a7f37; }
.verdict-converging { color: #9a6700; }
.verdict-exploring { color: #0969da; }
.sev-warning { color: #9a6700; }
.sev-critical { color: #cf222e; font-weight: 600; }
.heatmap { display: grid; grid-template-columns: repeat(32, 14px);
           gap: 2px; margin: 0.5em 0; }
.heatmap div { width: 14px; height: 14px; border-radius: 2px; }
.bar-outer { background: #eef2f5; width: 16em; height: 0.9em;
             display: inline-block; border-radius: 3px; }
.bar-inner { background: #2da44e; height: 100%; border-radius: 3px; }
.phasebar { background: #6e7fd4; height: 0.7em; display: inline-block; }
.meta { color: #5b6b7a; font-size: 0.8em; }
svg { border: 1px solid #c5ced6; border-radius: 4px; background: #fbfcfd; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def dashboard_path_for(base_path: str, campaign: str) -> str:
    """A per-campaign variant of a requested dashboard path.

    ``--dashboard out.html`` for a single campaign writes ``out.html``;
    a campaign *set* (``table1``) derives ``out-<campaign-slug>.html`` per
    member so files never overwrite each other.
    """
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", campaign).strip("-") or "campaign"
    if base_path.endswith(".html"):
        return f"{base_path[: -len('.html')]}-{slug}.html"
    return f"{base_path}-{slug}.html"


# -- section renderers --------------------------------------------------------


def _heat_color(depth: int, max_depth: int) -> str:
    if depth <= 0:
        return "#e7ecf0"
    # Perceptually ordered light->dark green ramp, no external palette.
    fraction = depth / max_depth if max_depth else 1.0
    lightness = 88 - int(fraction * 55)
    return f"hsl(140, 55%, {lightness}%)"


def _render_heatmap(model: str, coverage: ModelCoverage, ledger: CoverageLedger) -> str:
    """A cell-per-partition grid, shaded by sample depth.

    Only rendered for enumerable spaces (Mline's cache-set classes, the
    magnitude chunks) — an unbounded space has no fixed grid to draw.
    """
    space = coverage.space
    if not space or space > 4096:
        return ""
    partitions = ledger.models.get(model, {})
    # Partition keys look like "set:17" / "chunk:3"; order cells by the
    # numeric suffix so cell i is partition i.
    depth_by_index: Dict[int, int] = {}
    for key, tally in partitions.items():
        _, _, suffix = key.partition(":")
        try:
            depth_by_index[int(suffix)] = tally.samples
        except ValueError:
            continue
    max_depth = max(depth_by_index.values(), default=0)
    cells = []
    for index in range(space):
        depth = depth_by_index.get(index, 0)
        title = f"{model} partition {index}: {depth} sample(s)"
        cells.append(
            f'<div style="background:{_heat_color(depth, max_depth)}" '
            f'title="{_esc(title)}"></div>'
        )
    return f'<div class="heatmap">{"".join(cells)}</div>'


def _render_curve(coverage: ModelCoverage, total_samples: int) -> str:
    """The rarefaction discovery curve as an inline SVG polyline."""
    curve = coverage.discovery_curve
    if not curve:
        return ""
    width, height, pad = 360, 120, 8
    max_x = max(total_samples, curve[-1][0], 1)
    max_y = max(coverage.partitions, 1)
    points = [(0.0, 0.0)]
    for sample, discovered in curve:
        points.append((sample, discovered))
    points.append((max_x, curve[-1][1]))
    scaled = " ".join(
        f"{pad + (width - 2 * pad) * x / max_x:.1f},"
        f"{height - pad - (height - 2 * pad) * y / max_y:.1f}"
        for x, y in points
    )
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="discovery curve">'
        f'<polyline points="{scaled}" fill="none" '
        'stroke="#2da44e" stroke-width="2"/>'
        f'<text x="{pad}" y="{pad + 4}" font-size="9" fill="#5b6b7a">'
        f"partitions discovered ({coverage.partitions}) vs samples "
        f"({max_x})</text></svg>"
    )


def _render_coverage(ledger_doc: Mapping) -> str:
    ledger = CoverageLedger.from_json(ledger_doc)
    per_model = ledger.convergence()
    if not per_model:
        return ""
    parts = ["<h2>Coverage &amp; convergence</h2>"]
    verdict = overall_verdict(per_model)
    parts.append(
        f'<p>campaign verdict: <strong class="verdict-{_esc(verdict)}">'
        f"{_esc(verdict)}</strong></p>"
    )
    for model in sorted(per_model):
        cov = per_model[model]
        fraction = cov.coverage_fraction
        parts.append(f"<h3>{_esc(model)}</h3>")
        if fraction is not None:
            percent = 100.0 * fraction
            parts.append(
                f'<p><span class="bar-outer"><span class="bar-inner" '
                f'style="width:{percent:.1f}%"></span></span> '
                f"{percent:.1f}% ({cov.partitions}/{cov.space} classes)</p>"
            )
        else:
            parts.append(
                f"<p>{cov.partitions} partitions (space unbounded)</p>"
            )
        parts.append(
            f'<p class="meta">{cov.samples} samples '
            f"({cov.conclusive} conclusive, {cov.inconclusive} inconclusive, "
            f"{cov.counterexamples} counterexamples); "
            f"{cov.new_in_window} new partitions in the last {cov.window} "
            f'samples &rarr; <span class="verdict-{_esc(cov.verdict)}">'
            f"{_esc(cov.verdict)}</span></p>"
        )
        parts.append(_render_heatmap(model, cov, ledger))
        parts.append(_render_curve(cov, ledger.samples))
    return "\n".join(parts)


def _render_phases(report) -> str:
    phases = getattr(report, "phases", None)
    if not phases:
        return ""
    total_self = sum(p.self_time for p in phases.values()) or 1.0
    rows = []
    for phase in sorted(
        phases.values(), key=lambda p: p.self_time, reverse=True
    ):
        share = 100.0 * phase.self_time / total_self
        rows.append(
            "<tr>"
            f"<td>{_esc(phase.name)}</td><td>{phase.count}</td>"
            f"<td>{phase.total:.4f}</td><td>{phase.self_time:.4f}</td>"
            f'<td><span class="phasebar" style="width:{share:.1f}%">'
            f"</span> {share:.1f}%</td>"
            f"<td>{phase.percentile(0.50) * 1e3:.3f}</td>"
            f"<td>{phase.percentile(0.95) * 1e3:.3f}</td>"
            "</tr>"
        )
    cache_rows = []
    for name in sorted(getattr(report, "cache_rates", {}) or {}):
        hits, misses, rate = report.cache_rates[name]
        cache_rows.append(
            f"<tr><td>{_esc(name)}</td><td>{100.0 * rate:.1f}%</td>"
            f"<td>{hits}</td><td>{misses}</td></tr>"
        )
    out = [
        "<h2>Phase time breakdown</h2>",
        f'<p class="meta">wall time covered: '
        f"{getattr(report, 'wall_time', 0.0):.3f}s</p>",
        "<table><tr><th>Phase</th><th>Calls</th><th>Total (s)</th>"
        "<th>Self (s)</th><th>Self %</th><th>p50 (ms)</th><th>p95 (ms)</th>"
        "</tr>",
        *rows,
        "</table>",
    ]
    if cache_rows:
        out.extend(
            [
                "<h3>Cache hit rates</h3>",
                "<table><tr><th>Cache</th><th>Hit rate</th><th>Hits</th>"
                "<th>Misses</th></tr>",
                *cache_rows,
                "</table>",
            ]
        )
    return "\n".join(out)


def _render_health(health: Sequence[Mapping]) -> str:
    if not health:
        return ""
    rows = []
    for doc in health:
        severity = str(doc.get("severity", ""))
        shard = doc.get("shard_id")
        rows.append(
            "<tr>"
            f"<td>{_esc(doc.get('detector', ''))}</td>"
            f'<td class="sev-{_esc(severity)}">{_esc(severity)}</td>'
            f"<td>{_esc(doc.get('campaign', ''))}</td>"
            f"<td>{_esc(shard) if shard is not None else ''}</td>"
            f"<td>{_esc(doc.get('message', ''))}</td>"
            "</tr>"
        )
    return "\n".join(
        [
            "<h2>Health timeline</h2>",
            "<table><tr><th>Detector</th><th>Severity</th><th>Campaign</th>"
            "<th>Shard</th><th>Message</th></tr>",
            *rows,
            "</table>",
        ]
    )


def _render_triage(witnesses: Sequence) -> str:
    if not witnesses:
        return ""
    from repro.triage.cluster import cluster_witnesses

    clusters = cluster_witnesses(list(witnesses))
    rows = []
    for cluster in clusters:
        rep = cluster.representative
        reduction = rep.reduction
        rows.append(
            "<tr>"
            f"<td><code>{_esc(cluster.key)}</code></td>"
            f"<td>{cluster.size}</td>"
            f"<td>{_esc(rep.name)}</td>"
            f"<td>{_esc(reduction.get('instructions_after', '?'))} instr, "
            f"{_esc(reduction.get('cells_after', '?'))} cells</td>"
            "</tr>"
        )
    return "\n".join(
        [
            "<h2>Triage clusters</h2>",
            f'<p class="meta">{len(clusters)} distinct violation(s) across '
            f"{len(witnesses)} witness(es)</p>",
            "<table><tr><th>Signature</th><th>Witnesses</th>"
            "<th>Representative</th><th>Minimized size</th></tr>",
            *rows,
            "</table>",
        ]
    )


def _render_solver(doc: Mapping) -> str:
    """The solver-observatory section: time by coverage class plus the
    hardest queries, from a merged query-profile document
    (:mod:`repro.telemetry.solver`)."""
    from repro.telemetry.solver import UNATTRIBUTED, attribution, doc_totals

    classes = doc.get("classes") or {}
    if not classes:
        return ""
    totals = doc_totals(doc)
    total_us = totals["seconds_us"] or 1
    rows = []
    for name, tally in sorted(
        classes.items(), key=lambda item: (-item[1]["seconds_us"], item[0])
    ):
        queries = tally["queries"] or 1
        hits = tally["prepared_hits"]
        lookups = hits + tally["prepared_misses"]
        share = 100.0 * tally["seconds_us"] / total_us
        hit_text = f"{100.0 * hits / lookups:.0f}%" if lookups else "-"
        rows.append(
            "<tr>"
            f"<td><code>{_esc(name)}</code></td>"
            f"<td>{tally['queries']}</td><td>{tally['sat']}</td>"
            f"<td>{tally['seconds_us'] / 1e6:.4f}</td>"
            f'<td><span class="phasebar" style="width:{share:.1f}%">'
            f"</span> {share:.1f}%</td>"
            f"<td>{tally['restarts'] / queries:.2f}</td>"
            f"<td>{hit_text}</td></tr>"
        )
    top_rows = []
    for entry in doc.get("top") or []:
        top_rows.append(
            "<tr>"
            f"<td><code>{_esc(entry['class'])}</code></td>"
            f"<td>{_esc(entry['phase'])}</td>"
            f"<td>{entry['seconds_us'] / 1e3:.2f}</td>"
            f"<td>{_esc(entry['outcome'])}</td>"
            f"<td>{entry['restarts']}</td><td>{entry['repairs']}</td>"
            f"<td>{entry['conjuncts']}+{entry['extras']}</td>"
            f"<td>{entry['term_size']}</td>"
            "</tr>"
        )
    named = 100.0 * attribution(doc)
    parts = [
        "<h2>Solver observatory</h2>",
        f'<p class="meta">{totals["queries"]} queries, '
        f"{total_us / 1e6:.4f}s in smt.solve; {named:.1f}% attributed to "
        f"named coverage classes"
        + (
            f' (fallback class <code>{_esc(UNATTRIBUTED)}</code>)'
            if UNATTRIBUTED in classes
            else ""
        )
        + "</p>",
        "<table><tr><th>Coverage class</th><th>Queries</th><th>Sat</th>"
        "<th>Time (s)</th><th>Time %</th><th>Restarts/q</th>"
        "<th>Prep hit %</th></tr>",
        *rows,
        "</table>",
    ]
    if top_rows:
        parts.extend(
            [
                "<h3>Hardest queries</h3>",
                "<table><tr><th>Class</th><th>Phase</th><th>ms</th>"
                "<th>Outcome</th><th>Restarts</th><th>Repairs</th>"
                "<th>Conjuncts</th><th>Terms</th></tr>",
                *top_rows,
                "</table>",
            ]
        )
    return "\n".join(parts)


def _render_sweep(sweep: Mapping) -> str:
    """The differential-sweep section: per-config verdict table.

    ``sweep`` is a validated report document
    (:func:`repro.matrix.report.sweep_report_doc`).
    """
    configs = sweep.get("configs") or []
    if not configs:
        return ""
    axis_names = sorted(sweep.get("axes") or {})
    header = (
        "<tr><th>Config</th>"
        + "".join(f"<th>{_esc(name)}</th>" for name in axis_names)
        + "<th>Verdict</th><th>Counterexamples</th><th>Inconclusive</th>"
        "<th>First divergence</th></tr>"
    )
    rows = []
    for entry in configs:
        divergence = entry.get("first_divergence") or {}
        verdict = (
            '<span class="verdict-saturated">sound</span>'
            if entry.get("sound")
            else '<span class="sev-critical">counterexample</span>'
        )
        axes = entry.get("axes") or {}
        rows.append(
            "<tr>"
            f"<td><code>{_esc(entry.get('config', ''))}</code></td>"
            + "".join(
                f"<td>{_esc(axes.get(name, '-'))}</td>"
                for name in axis_names
            )
            + f"<td>{verdict}</td>"
            f"<td>{_esc(entry.get('counterexamples', 0))}</td>"
            f"<td>{_esc(entry.get('inconclusive', 0))}</td>"
            f"<td><code>{_esc(divergence.get('key', '-'))}</code></td>"
            "</tr>"
        )
    summary = (sweep.get("verdict") or {}).get("summary", "")
    return "\n".join(
        [
            "<h2>Differential sweep</h2>",
            f'<p class="meta">experiment {_esc(sweep.get("experiment", ""))} '
            f'&middot; base profile {_esc(sweep.get("base_profile", ""))} '
            f'&middot; {_esc(sweep.get("grid_size", len(configs)))} '
            "grid point(s)</p>",
            f"<p><strong>{_esc(summary)}</strong></p>" if summary else "",
            f"<table>{header}",
            *rows,
            "</table>",
        ]
    )


def _health_docs(health: Iterable) -> List[Dict]:
    """Normalize health inputs: event dataclasses, (ts, event) tuples from
    ``HealthMonitor.log``, or already-parsed JSONL documents."""
    import dataclasses

    docs: List[Dict] = []
    for item in health or ():
        if isinstance(item, tuple) and len(item) == 2:
            item = item[1]
        if dataclasses.is_dataclass(item) and not isinstance(item, type):
            docs.append(dataclasses.asdict(item))
        elif isinstance(item, Mapping):
            docs.append(dict(item))
    return docs


# -- assembly -----------------------------------------------------------------


def build_dashboard_html(
    campaign: str,
    *,
    stats=None,
    ledger: Optional[Mapping] = None,
    report=None,
    health: Iterable = (),
    witnesses: Sequence = (),
    sweep: Optional[Mapping] = None,
    solver: Optional[Mapping] = None,
    meta: Optional[Mapping] = None,
) -> str:
    """Assemble the dashboard from whatever inputs exist."""
    health_docs = _health_docs(health)
    verdict = None
    if ledger:
        per_model = CoverageLedger.from_json(ledger).convergence()
        verdict = overall_verdict(per_model) if per_model else None

    cards: List[Tuple[str, str, str]] = []
    if stats is not None:
        experiments = stats.experiments
        rate = (
            100.0 * stats.inconclusive / experiments if experiments else 0.0
        )
        cards.append(("experiments", str(experiments), ""))
        cards.append(("counterexamples", str(stats.counterexamples), ""))
        cards.append(("inconclusive", f"{rate:.1f}%", ""))
    if verdict is not None:
        cards.append(("convergence", verdict, f"verdict-{verdict}"))
    if health_docs:
        worst = (
            "critical"
            if any(d.get("severity") == "critical" for d in health_docs)
            else "warning"
        )
        cards.append(
            ("health events", str(len(health_docs)), f"sev-{worst}")
        )

    card_html = "".join(
        f'<div class="card"><div class="value {_esc(css)}">{_esc(value)}'
        f'</div><div class="label">{_esc(label)}</div></div>'
        for label, value, css in cards
    )

    meta_bits = []
    for key in ("timestamp", "git_sha", "python"):
        if meta and meta.get(key):
            meta_bits.append(f"{key}: {_esc(meta[key])}")
    sections = [
        f"<h1>Campaign dashboard — {_esc(campaign)}</h1>",
        f'<p class="meta">{" &middot; ".join(meta_bits)}</p>'
        if meta_bits
        else "",
        f'<div class="cards">{card_html}</div>' if cards else "",
        _render_sweep(sweep) if sweep else "",
        _render_coverage(ledger) if ledger else "",
        _render_phases(report) if report is not None else "",
        _render_solver(solver) if solver else "",
        _render_health(health_docs),
        _render_triage(witnesses),
    ]
    body = "\n".join(section for section in sections if section)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(campaign)} — campaign dashboard</title>\n"
        f"<style>{_CSS}</style>\n"
        f"</head><body>\n{body}\n</body></html>\n"
    )


def write_dashboard(
    path: str,
    campaign: str,
    result,
    health: Iterable = (),
    report=None,
) -> str:
    """Write the dashboard for one finished campaign; returns the path.

    ``result`` is a :class:`~repro.pipeline.result.CampaignResult`;
    ``health`` accepts ``HealthMonitor.log`` entries, raw events, or JSONL
    documents.  A per-run stamp (git sha, python, timestamp) is embedded
    so an archived file identifies its build.
    """
    from repro.telemetry.export import stamp

    text = build_dashboard_html(
        campaign,
        stats=result.stats,
        ledger=result.ledger,
        report=report,
        health=health,
        witnesses=result.witnesses,
        solver=getattr(result, "solver", None),
        meta=stamp(),
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
