"""Flush+Reload (§2.1) on the simulated core.

The attacker (1) flushes the monitored lines, (2) lets the victim run,
(3) times a reload of each line with the PMC cycle counter: a fast reload
means the victim (or its transient execution) touched the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.hw.core import Core


@dataclass(frozen=True)
class ProbeResult:
    """Timing of one reload probe."""

    addr: int
    latency: int
    hit: bool


class FlushReload:
    """Flush+Reload primitive bound to one core.

    The threshold between hit and miss comes from the core's configured
    latencies; a real attacker calibrates it the same way with the cycle
    counter.
    """

    def __init__(self, core: Core):
        self.core = core
        self.threshold = (
            core.config.hit_latency + core.config.miss_latency
        ) // 2

    def flush(self, addresses: Iterable[int]) -> None:
        """Step (1): evict the monitored lines.

        Translations for the probe array are warmed first (a real attacker
        touches its own pages before flushing the lines), so reload timings
        measure the cache, not the TLB.
        """
        for addr in addresses:
            self.core.tlb.access(addr)
            self.core.flush_line(addr)

    def reload(self, addresses: Sequence[int]) -> List[ProbeResult]:
        """Step (3): time a reload of each monitored line."""
        results = []
        for addr in addresses:
            latency = self.core.timed_access(addr)
            results.append(
                ProbeResult(addr=addr, latency=latency, hit=latency < self.threshold)
            )
        return results

    def hot_addresses(self, addresses: Sequence[int]) -> List[int]:
        """The monitored addresses the victim touched."""
        return [probe.addr for probe in self.reload(addresses) if probe.hit]
