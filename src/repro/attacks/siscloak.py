"""SiSCLoak: SIngle SpeCulative LOad AttacK (§6.4, Fig. 6).

Cortex-A53 issues a *single* speculative load whose address was computed
architecturally before the mispredicted branch, even though it never
forwards speculative results.  Both Fig. 6 victims exploit that:

* **v1** (anticipated Spectre-PHT): the array access ``A[x0]`` is hoisted
  above the bounds check; after branch training, an out-of-bounds ``x0``
  makes the transiently-executed ``B[x2]`` access leak the out-of-bounds
  value through the cache.
* **classification-bit**: elements of ``A`` carry a "public" flag in their
  top bit; a mispredicted flag check transiently accesses ``B[x2]`` for a
  *confidential* element.

The attack recovers ``x2`` with Flush+Reload over ``B`` using the PMC
cycle counter — the "real attack" the paper mounts after the TrustZone
evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.attacks.flushreload import FlushReload
from repro.errors import HardwareError
from repro.hw.core import Core, CoreConfig
from repro.hw.state import MachineState, Memory
from repro.isa.assembler import assemble
from repro.isa.program import AsmProgram

#: Default victim memory layout: two arrays in the experiment region.
A_BASE = 0x90000
B_BASE = 0xA0000
LINE = 64

SECRET_FLAG = 0x80000000


def siscloak_v1_program(a_base: int = A_BASE, b_base: int = B_BASE) -> AsmProgram:
    """Fig. 6, second column: Spectre-PHT with the load anticipated.

    ``x0`` — attacker-controlled index; ``x1`` — size of A (the bound).
    The load of ``A[x0]`` happens *before* the bounds check.
    """
    return assemble(
        f"""
            mov x5, #{a_base:#x}
            ldr x2, [x5, x0]       // x2 = A[x0], anticipated
            cmp x0, x1
            b.hs end               // bounds check: taken when x0 >= size
            mov x6, #{b_base:#x}
            ldr x3, [x6, x2]       // uses the (possibly out-of-bounds) value
        end:
            ret
        """,
        name="siscloak_v1",
    )


def siscloak_classification_program(
    a_base: int = A_BASE, b_base: int = B_BASE
) -> AsmProgram:
    """Fig. 6, third column: classification stored in a bit of the element.

    Every element of ``A`` is a valid index into ``B``; its top bit marks it
    confidential.  The check never passes for confidential elements, but a
    trained mispredict transiently accesses ``B[x2]`` anyway.
    """
    return assemble(
        f"""
            mov x5, #{a_base:#x}
            ldr x2, [x5, x0]       // x2 = A[x0]
            tst x2, #{SECRET_FLAG:#x}
            b.ne end               // confidential: skip the use
            mov x6, #{b_base:#x}
            ldr x3, [x6, x2]
        end:
            ret
        """,
        name="siscloak_classify",
    )


@dataclass
class AttackOutcome:
    """Result of one secret-recovery attempt."""

    recovered: Optional[int]
    secret: int
    probes: int

    @property
    def success(self) -> bool:
        return self.recovered == self.secret


class SiSCloakAttack:
    """Mount a SiSCLoak attack against a victim on the simulated core.

    The victim's memory holds array ``A`` (attacker-readable indices into
    ``B``) and the attacker probes ``B``'s cache lines.  Secrets are
    line-granular (multiples of 64) as in cache-timing practice.
    """

    def __init__(
        self,
        program: AsmProgram,
        memory: Dict[int, int],
        core_config: Optional[CoreConfig] = None,
        b_base: int = B_BASE,
        candidate_lines: int = 64,
        candidate_offsets: Optional[Sequence[int]] = None,
        training_rounds: int = 8,
    ):
        self.program = program
        self.memory = dict(memory)
        self.core = Core(core_config or CoreConfig())
        self.probe = FlushReload(self.core)
        self.b_base = b_base
        # The attacker probes B at these offsets.  For the classification
        # variant the candidate secrets carry the flag bit (the attacker
        # knows the victim's data convention), so offsets are configurable.
        if candidate_offsets is None:
            candidate_offsets = [i * LINE for i in range(candidate_lines)]
        self.candidates = [b_base + offset for offset in candidate_offsets]
        self.training_rounds = training_rounds

    def _run_victim(self, regs: Dict[str, int]) -> None:
        state = MachineState(regs=regs, memory=Memory(self.memory))
        self.core.execute(self.program, state)

    def train(self, benign_regs: Dict[str, int]) -> None:
        """Teach the predictor the not-taken (use-the-value) direction."""
        for _ in range(self.training_rounds):
            self._run_victim(benign_regs)

    def leak_once(self, malicious_regs: Dict[str, int]) -> List[int]:
        """One Flush+Reload round: returns the hot B lines."""
        self.probe.flush(self.candidates)
        # Flushing B must not leave the stride prefetcher primed.
        self.core.prefetcher.reset()
        self._run_victim(malicious_regs)
        return self.probe.hot_addresses(self.candidates)

    def recover(
        self,
        benign_regs: Dict[str, int],
        malicious_regs: Dict[str, int],
        secret: int,
    ) -> AttackOutcome:
        """Full attack: train, leak, decode the secret line index."""
        self.train(benign_regs)
        hot = self.leak_once(malicious_regs)
        # Exclude lines the victim touches architecturally on the benign
        # path (the attacker can calibrate those the same way).
        self.train(benign_regs)
        baseline = set(self.leak_once(benign_regs))
        signal = [addr for addr in hot if addr not in baseline]
        recovered = None
        if len(signal) == 1:
            recovered = signal[0] - self.b_base
        return AttackOutcome(
            recovered=recovered, secret=secret, probes=len(self.candidates)
        )
