"""End-to-end attack proofs of concept (§2.1, §6.4).

``flushreload`` implements the Flush+Reload probe on the simulated core
using the PMC cycle counter; ``siscloak`` mounts the two SiSCLoak
counterexamples of Fig. 6 — recovering a secret value through a *single
speculative load* on the simulated Cortex-A53 — plus the anticipated-load
variation of Spectre-PHT.
"""

from repro.attacks.flushreload import FlushReload, ProbeResult
from repro.attacks.siscloak import (
    AttackOutcome,
    SiSCloakAttack,
    siscloak_classification_program,
    siscloak_v1_program,
)

__all__ = [
    "FlushReload",
    "ProbeResult",
    "AttackOutcome",
    "SiSCloakAttack",
    "siscloak_classification_program",
    "siscloak_v1_program",
]
