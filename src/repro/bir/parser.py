"""Parser for the BIR text format produced by :mod:`repro.bir.printer`.

Round-trips programs through their textual form, which makes augmented
programs storable/diffable artifacts (the experiment database keeps
disassembled ISA programs; this covers the IL level) and lets tests write
BIR snippets directly.

Width inference: variables default to 64 bits; one-bit expressions arise
structurally (comparisons, boolean connectives over them), which covers
every program the lifter and the augmentation passes produce.  A
``widths`` mapping can pin specific variable names.

Lossy bits of the text format: the ``transient`` markers on shadow
statements and the ``explicit`` flag on jumps are not rendered, so a
parsed program is execution-equivalent to the original but should not be
fed back into the augmentation passes that consume those flags.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Statement, Store
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import BirError

_TOKEN_RE = re.compile(
    r"""
    (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_#]*)
  | (?P<op>:=|>>u|>>s|<<|==|!=|<=u|<=s|<u|<s|[()\[\]{}~,?:+\-*&|^])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_BINOPS = {
    "+": E.BinOpKind.ADD,
    "-": E.BinOpKind.SUB,
    "*": E.BinOpKind.MUL,
    "&": E.BinOpKind.AND,
    "|": E.BinOpKind.OR,
    "^": E.BinOpKind.XOR,
    "<<": E.BinOpKind.SHL,
    ">>u": E.BinOpKind.LSHR,
    ">>s": E.BinOpKind.ASHR,
}

_CMPS = {
    "==": E.CmpKind.EQ,
    "!=": E.CmpKind.NE,
    "<u": E.CmpKind.ULT,
    "<=u": E.CmpKind.ULE,
    "<s": E.CmpKind.SLT,
    "<=s": E.CmpKind.SLE,
}

_KEYWORDS = {"if", "then", "else"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise BirError(f"cannot tokenize at: {text[position:position+20]!r}")
        position = match.end()
        if match.lastgroup != "ws":
            tokens.append(match.group())
    return tokens


class _ExprParser:
    """Recursive-descent parser for fully-parenthesised printer output."""

    def __init__(self, tokens: List[str], widths: Dict[str, int]):
        self.tokens = tokens
        self.position = 0
        self.widths = widths

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise BirError("unexpected end of expression")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise BirError(f"expected {token!r}, got {got!r}")

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    # -- grammar -------------------------------------------------------------

    def parse_expr(self) -> E.Expr:
        token = self.peek()
        if token == "(":
            return self._parse_parenthesised()
        if token == "~":
            self.next()
            operand = self.parse_expr()
            return E.UnOp(E.UnOpKind.NOT, operand)
        if token == "-":
            self.next()
            operand = self.parse_expr()
            return E.UnOp(E.UnOpKind.NEG, operand)
        return self._parse_atom_or_load()

    def _parse_parenthesised(self) -> E.Expr:
        self.expect("(")
        if self.peek() == "if":
            self.next()
            cond = self.parse_expr()
            self.expect("then")
            then = self.parse_expr()
            self.expect("else")
            orelse = self.parse_expr()
            self.expect(")")
            return E.Ite(cond, then, orelse)
        lhs = self.parse_expr()
        op = self.next()
        rhs = self.parse_expr()
        self.expect(")")
        if op in _BINOPS:
            return E.BinOp(_BINOPS[op], lhs, rhs)
        if op in _CMPS:
            return E.Cmp(_CMPS[op], lhs, rhs)
        raise BirError(f"unknown operator {op!r}")

    def _parse_atom_or_load(self) -> E.Expr:
        token = self.next()
        if re.fullmatch(r"0x[0-9a-fA-F]+|\d+", token):
            return E.Const(int(token, 0), 64)
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_#]*", token) or token in _KEYWORDS:
            raise BirError(f"unexpected token {token!r}")
        # A name followed by '{' or '[' is a memory expression.
        if self.peek() in ("{", "["):
            mem: E.MemExpr = E.MemVar(token)
            while self.peek() == "{":
                self.next()
                addr = self.parse_expr()
                self.expect(":=")
                value = self.parse_expr()
                self.expect("}")
                mem = E.MemStore(mem, addr, value)
            self.expect("[")
            addr = self.parse_expr()
            self.expect("]")
            return E.Load(mem, addr, 64)
        return E.Var(token, self.widths.get(token, 64))


def parse_expr(text: str, widths: Optional[Dict[str, int]] = None) -> E.Expr:
    """Parse one expression in the printer's format."""
    parser = _ExprParser(_tokenize(text), widths or {})
    expr = parser.parse_expr()
    if not parser.at_end():
        raise BirError(f"trailing tokens in expression: {text!r}")
    return expr


_OBSERVE_RE = re.compile(
    r"^observe<(?P<tag>[A-Z]+)>\[(?P<exprs>.*?)\]"
    r"(?:\s+when\s+(?P<guard>.*?))?(?:\s+\((?P<label>[^)]*)\))?$"
)
_ASSIGN_RE = re.compile(r"^(?P<target>[A-Za-z_][A-Za-z0-9_#]*)\s*:=\s*(?P<value>.+)$")
_STORE_RE = re.compile(
    r"^(?P<mem>[A-Za-z_][A-Za-z0-9_#]*)\[(?P<addr>.+)\]\s*:=\s*(?P<value>.+)$"
)
_CJMP_RE = re.compile(r"^cjmp\s+(?P<cond>.+?)\s*\?\s*(?P<t>\S+)\s*:\s*(?P<f>\S+)$")
_HALT_RE = re.compile(r"^halt(?:\s*\((?P<reason>[^)]*)\))?$")

_KIND_BY_LABEL_PREFIX = {kind.value: kind for kind in ObsKind}


def _split_top_level(text: str) -> List[str]:
    """Split on commas not nested in any bracket."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_stmt(
    line: str, widths: Optional[Dict[str, int]] = None
) -> Statement:
    """Parse one statement line in the printer's format."""
    text = line.strip()
    widths = widths or {}
    if text.startswith("observe<"):
        match = _OBSERVE_RE.match(text)
        if not match:
            raise BirError(f"bad observe statement: {line!r}")
        tag = ObsTag[match.group("tag")]
        exprs = tuple(
            parse_expr(part, widths)
            for part in _split_top_level(match.group("exprs"))
        )
        guard = (
            parse_expr(match.group("guard"), widths)
            if match.group("guard")
            else E.TRUE
        )
        label = match.group("label") or ""
        kind = _kind_from_label(label)
        return Observe(tag=tag, kind=kind, exprs=exprs, guard=guard, label=label)
    if text.startswith("jmp "):
        return Jmp(text[4:].strip())
    cjmp = _CJMP_RE.match(text)
    if cjmp:
        return CJmp(
            parse_expr(cjmp.group("cond"), widths),
            cjmp.group("t"),
            cjmp.group("f"),
        )
    halt = _HALT_RE.match(text)
    if halt:
        return Halt(reason=halt.group("reason") or "end")
    store = _STORE_RE.match(text)
    if store and "[" not in store.group("mem"):
        return Store(
            E.MemVar(store.group("mem")),
            parse_expr(store.group("addr"), widths),
            parse_expr(store.group("value"), widths),
        )
    assign = _ASSIGN_RE.match(text)
    if assign:
        value = parse_expr(assign.group("value"), widths)
        target = E.Var(
            assign.group("target"),
            widths.get(assign.group("target"), value.width),
        )
        return Assign(target, value)
    raise BirError(f"cannot parse statement: {line!r}")


def _kind_from_label(label: str) -> ObsKind:
    # Printer output loses the kind enum; augmentation labels start with a
    # recognisable word ("pc:0", "load", "spec-load", "line", "page", ...).
    head = label.split(":")[0].strip()
    aliases = {
        "pc": ObsKind.PC,
        "load": ObsKind.LOAD_ADDR,
        "ar-addr": ObsKind.LOAD_ADDR,
        "non-ar-addr": ObsKind.LOAD_ADDR,
        "store": ObsKind.STORE_ADDR,
        "spec-load": ObsKind.SPEC_LOAD_ADDR,
        "line": ObsKind.CACHE_LINE,
        "page": ObsKind.PAGE,
        "mul-operand": ObsKind.OPERAND,
        "probe": ObsKind.LOAD_ADDR,
    }
    if head in aliases:
        return aliases[head]
    if head in _KIND_BY_LABEL_PREFIX:
        return _KIND_BY_LABEL_PREFIX[head]
    return ObsKind.LOAD_ADDR


def parse_program(
    text: str, widths: Optional[Dict[str, int]] = None
) -> Program:
    """Parse a whole program in the printer's format."""
    name = "program"
    blocks: List[Block] = []
    label: Optional[str] = None
    body: List[Statement] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("program ") and line.endswith(":"):
            name = line[len("program ") : -1]
            continue
        if line.endswith(":") and re.fullmatch(
            r"[A-Za-z_][A-Za-z0-9_]*:", line
        ):
            if label is not None:
                blocks.append(_finish_block(label, body))
            label = line[:-1]
            body = []
            continue
        if label is None:
            raise BirError(f"statement before first label: {line!r}")
        body.append(parse_stmt(line, widths))
    if label is not None:
        blocks.append(_finish_block(label, body))
    return Program(blocks, name=name)


def _finish_block(label: str, body: List[Statement]) -> Block:
    if not body:
        raise BirError(f"block {label!r} has no terminator")
    *stmts, terminator = body
    return Block(label, tuple(stmts), terminator)
