"""BIR: the binary intermediate representation used for analysis.

Mirrors the role of HolBA's BIR in Scam-V: ISA programs are lifted to this
explicit, architecture-independent language, observation-augmentation passes
insert :class:`~repro.bir.stmt.Observe` statements, and the symbolic executor
runs over it.
"""

from repro.bir.expr import (
    BinOp,
    BinOpKind,
    Cmp,
    CmpKind,
    Const,
    Expr,
    Ite,
    Load,
    MemExpr,
    MemStore,
    MemVar,
    UnOp,
    UnOpKind,
    Var,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    const,
    var,
)
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Statement, Store
from repro.bir.program import Block, Program
from repro.bir.cfg import ControlFlowGraph
from repro.bir.printer import format_expr, format_program, format_stmt
from repro.bir.parser import parse_expr, parse_program, parse_stmt
from repro.bir.tags import ObsKind, ObsTag

__all__ = [
    "BinOp",
    "BinOpKind",
    "Cmp",
    "CmpKind",
    "Const",
    "Expr",
    "Ite",
    "Load",
    "MemExpr",
    "MemStore",
    "MemVar",
    "UnOp",
    "UnOpKind",
    "Var",
    "FALSE",
    "TRUE",
    "bool_and",
    "bool_not",
    "bool_or",
    "const",
    "var",
    "Assign",
    "CJmp",
    "Halt",
    "Jmp",
    "Observe",
    "Statement",
    "Store",
    "Block",
    "Program",
    "ControlFlowGraph",
    "format_expr",
    "format_program",
    "format_stmt",
    "parse_expr",
    "parse_program",
    "parse_stmt",
    "ObsKind",
    "ObsTag",
]
