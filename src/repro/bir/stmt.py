"""BIR statements.

A block body is a sequence of :class:`Assign`, :class:`Store` and
:class:`Observe` statements, terminated by exactly one of :class:`Jmp`,
:class:`CJmp`, or :class:`Halt`.

``Observe`` is the Scam-V-style observation statement: it carries a *tag*
(see :class:`~repro.obs.tags.ObsTag`) so one augmented program can encode both
the model under validation and the refined model (the projection optimisation
of §5.1 of the paper), a guard condition, and the observed expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bir.expr import BOOL_WIDTH, Expr, MemVar, TRUE, Var
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import BirError


class Statement:
    """Base class for BIR statements."""


@dataclass(frozen=True)
class Assign(Statement):
    """``var := expr``; widths must match.

    ``transient`` marks shadow statements inserted by the speculative
    instrumentation pass (§4.2.2): they model wrongly-speculated execution
    and operate on shadow (starred) variables.
    """

    target: Var
    value: Expr
    transient: bool = False

    def __post_init__(self):
        if self.target.width != self.value.width:
            raise BirError(
                f"assignment width mismatch: {self.target.name} is "
                f"{self.target.width} bits, value is {self.value.width}"
            )


@dataclass(frozen=True)
class Store(Statement):
    """``mem[addr] := value`` on the named base memory."""

    mem: MemVar
    addr: Expr
    value: Expr
    transient: bool = False


@dataclass(frozen=True)
class Observe(Statement):
    """Emit an observation when ``guard`` holds.

    ``tag``   — which observational model(s) the observation belongs to.
    ``kind``  — what the observation records (pc, load address, ...).
    ``guard`` — a one-bit expression; the observation is produced only on
                executions where it evaluates to true (used for the
                conditional observations of Mpart: ``if AR(x) then x``).
    ``exprs`` — the observed expressions.
    ``label`` — a human-readable description for debugging and reports.
    """

    tag: ObsTag
    kind: ObsKind
    exprs: Tuple[Expr, ...]
    guard: Expr = TRUE
    label: str = ""

    def __post_init__(self):
        if self.guard.width != BOOL_WIDTH:
            raise BirError("observation guard must be one bit wide")
        object.__setattr__(self, "exprs", tuple(self.exprs))


@dataclass(frozen=True)
class Jmp(Statement):
    """Unconditional jump to a block label.

    ``explicit`` distinguishes a lifted unconditional branch instruction from
    a mere fall-through edge; the straight-line-speculation model Mspec'
    (§6.5) rewrites only explicit jumps into tautological conditionals.
    """

    target: str
    explicit: bool = False


@dataclass(frozen=True)
class CJmp(Statement):
    """Conditional jump: to ``target_true`` if ``cond`` holds, else to
    ``target_false``."""

    cond: Expr
    target_true: str
    target_false: str

    def __post_init__(self):
        if self.cond.width != BOOL_WIDTH:
            raise BirError("conditional jump condition must be one bit wide")


@dataclass(frozen=True)
class Halt(Statement):
    """Terminate execution."""

    # Distinguishes the normal program exit from lifted RET instructions,
    # purely for diagnostics.
    reason: str = "end"
