"""Observation tags and kinds attached to BIR ``Observe`` statements.

These are defined at the IL layer (as in HolBA, where observation channels
are part of BIR) so that the IL, the symbolic executor, and the observation
models can all refer to them without import cycles.  The observation-model
API re-exports them as :mod:`repro.obs.tags`.

``ObsTag`` implements the projection optimisation of §5.1: a single augmented
program carries the observations of both models, and the model under
validation is recovered by dropping every ``REFINED`` observation.

``ObsKind`` is a descriptive label for what an observation captures; relation
synthesis requires kinds to match positionally, which encodes the paper's
"observation lists that do not agree are trivially unequal" condition.
"""

from __future__ import annotations

import enum


class ObsTag(enum.Enum):
    """Which model an observation belongs to."""

    BASE = "base"  # the model under validation (M1)
    REFINED = "refined"  # only in the refined model (M2)
    PROBE = "probe"  # pipeline-internal: well-formedness & coverage probes;
    # ignored by relation synthesis equality/difference


class ObsKind(enum.Enum):
    """What an observation records."""

    PC = "pc"  # program counter of an executed instruction
    LOAD_ADDR = "load_addr"  # address of a memory load
    STORE_ADDR = "store_addr"  # address of a memory store
    BRANCH_COND = "branch_cond"  # boolean outcome of a branch
    CACHE_LINE = "cache_line"  # cache set index bits of an address
    SPEC_LOAD_ADDR = "spec_load_addr"  # address of a transient (shadow) load
    PAGE = "page"  # page number of an accessed address (TLB channel)
    OPERAND = "operand"  # operand of a variable-latency instruction (timing)
