"""Campaign-scoped cache registry behind the hash-consed expression core.

The expression language (:mod:`repro.bir.expr`) interns every node at
construction so structurally equal terms are pointer-identical; on top of
that, :func:`repro.bir.simp.simplify`, :func:`repro.smt.compiled.compile_expr`
and :func:`repro.core.rename.rename_expr` memoize their (pure) results by
node.  All of those caches register themselves here so that

* hit/miss counters can be read in one place (and surfaced per shard in
  :class:`repro.pipeline.metrics.CampaignStats`),
* every cache can be cleared together (:func:`clear_caches`), and
* the whole layer can be switched off (:func:`set_enabled`) for A/B
  comparisons — the benchmark uses this to measure the un-cached baseline
  in the same process.

Correctness never depends on a cache being populated or complete: node
equality falls back to structural comparison when two equal terms are not
the same object (e.g. across a :func:`clear_caches` generation), and every
memoized function is pure.  Disabling or clearing caches can therefore only
change speed, never results.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CacheStats",
    "register_cache",
    "cache_stats",
    "counter_totals",
    "hit_rate",
    "cache_names",
    "clear_caches",
    "set_enabled",
    "enabled",
]


class CacheStats:
    """Hit/miss counters for one cache (mutated on the hot path)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: name -> (stats, clear_fn, size_fn)
_REGISTRY: Dict[str, Tuple[CacheStats, Callable[[], None], Callable[[], int]]] = {}

_ENABLED = True


def register_cache(
    name: str,
    clear: Callable[[], None],
    size: Callable[[], int],
) -> CacheStats:
    """Register a cache; returns the stats object the cache should mutate.

    Re-registration under an existing name (module reload) replaces the
    clear/size hooks but keeps the existing counters.
    """
    if name in _REGISTRY:
        stats = _REGISTRY[name][0]
    else:
        stats = CacheStats()
    _REGISTRY[name] = (stats, clear, size)
    return stats


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Snapshot of every registered cache: hits, misses, current size."""
    out: Dict[str, Dict[str, int]] = {}
    for name, (stats, _clear, size) in sorted(_REGISTRY.items()):
        row = stats.snapshot()
        row["size"] = size()
        out[name] = row
    return out


def counter_totals() -> Dict[str, int]:
    """Flat ``{"<name>_hits": n, "<name>_misses": m}`` counter view.

    The shard worker samples this before and after a shard to attribute
    cache activity to campaign statistics.
    """
    out: Dict[str, int] = {}
    for name, (stats, _clear, _size) in _REGISTRY.items():
        out[f"{name}_hits"] = stats.hits
        out[f"{name}_misses"] = stats.misses
    return out


def hit_rate(cache: str, totals: Optional[Dict[str, int]] = None) -> float:
    """Hit rate of one cache from a :func:`counter_totals`-style dict.

    ``totals`` defaults to the live registry's counters; pass a sampled
    delta (e.g. ``CampaignStats.cache_counters``) to rate a shard's or a
    campaign's share instead of the process lifetime.  0.0 when the cache
    saw no traffic (or is unknown).
    """
    if totals is None:
        totals = counter_totals()
    hits = totals.get(f"{cache}_hits", 0)
    misses = totals.get(f"{cache}_misses", 0)
    total = hits + misses
    return hits / total if total else 0.0


def cache_names(totals: Optional[Dict[str, int]] = None) -> List[str]:
    """The cache names present in a flat counter dict (sorted)."""
    if totals is None:
        totals = counter_totals()
    names = set()
    for key in totals:
        if key.endswith("_hits"):
            names.add(key[: -len("_hits")])
        elif key.endswith("_misses"):
            names.add(key[: -len("_misses")])
    return sorted(names)


def clear_caches() -> None:
    """Drop every registered cache's contents (counters are kept).

    Safe at any point: nodes created before the clear remain valid and
    compare equal to re-created ones through the structural fallback.
    """
    for _stats, clear, _size in _REGISTRY.values():
        clear()


def set_enabled(value: bool) -> None:
    """Globally enable/disable interning and memoization (for benchmarks).

    Disabling also clears the caches so stale canonical nodes cannot be
    returned, and so a later re-enable starts from a cold state.
    """
    global _ENABLED
    _ENABLED = bool(value)
    clear_caches()


def enabled() -> bool:
    return _ENABLED


def describe() -> List[str]:
    """Human-readable cache summary lines (used by the benchmark report)."""
    lines = []
    for name, row in cache_stats().items():
        total = row["hits"] + row["misses"]
        rate = (100.0 * row["hits"] / total) if total else 0.0
        lines.append(
            f"{name}: {row['hits']} hits / {row['misses']} misses "
            f"({rate:.1f}% hit rate, {row['size']} entries)"
        )
    return lines
