"""BIR expression language: fixed-width bit-vector terms with memory selects.

Expressions are immutable and *hash-consed*: every constructor interns the
node in a campaign-scoped table, so structurally equal terms are
pointer-identical, ``==`` is an identity check in the common case, and
``hash`` is a cached O(1) field read.  Per-node attributes that used to be
recomputed by walking the tree — :meth:`Expr.variables`,
:meth:`Expr.memories`, ``size`` and ``depth`` — are computed once and
cached on the node.  Booleans are one-bit bit-vectors, as in HolBA's BIR;
:data:`TRUE` and :data:`FALSE` are the canonical constants.

Correctness does not depend on interning being complete: ``__eq__`` falls
back to structural comparison when two equal terms are not the same object
(which can only happen across an :func:`repro.bir.intern.clear_caches`
generation or with interning disabled), and ``__hash__`` reproduces the
value the pre-interning frozen-dataclass implementation produced, so hash
containers iterate exactly as before and no random draw order shifts.

The language is deliberately small: constants, variables, unary and binary
bit-vector operators, comparisons, if-then-else, and memory ``Load`` over a
memory expression that is either the initial memory (:class:`MemVar`) or a
store chain (:class:`MemStore`).  This is exactly the fragment the templates
of the paper produce, and it keeps the symbolic executor, evaluator and the
model finder complete.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Iterator, Optional, Tuple

from repro.bir import intern
from repro.errors import BirTypeError
from repro.utils import bitvec

BOOL_WIDTH = 1
WORD_WIDTH = 64


class UnOpKind(enum.Enum):
    """Unary bit-vector operators."""

    NOT = "not"  # bitwise complement
    NEG = "neg"  # two's-complement negation


class BinOpKind(enum.Enum):
    """Binary bit-vector operators (operands and result share a width)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"


class CmpKind(enum.Enum):
    """Comparison operators; result is a one-bit bit-vector."""

    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    SLT = "slt"
    SLE = "sle"


# -- interning tables ---------------------------------------------------------

# One table per node class, keyed by the canonical constructor arguments.
# Child positions are keyed by id(): children are interned first, the table
# holds a strong reference to every node (and thereby to its children), so
# ids stay stable for the lifetime of a table generation.
_TABLES: Dict[str, dict] = {
    name: {}
    for name in (
        "Const",
        "Var",
        "UnOp",
        "BinOp",
        "Cmp",
        "Ite",
        "Load",
        "MemVar",
        "MemStore",
    )
}

# Safety valve: a campaign that somehow produces this many distinct terms
# gets its tables dropped wholesale (correctness is unaffected; see the
# module docstring) rather than growing without bound.
_TABLE_CAP = 1 << 20


def _clear_tables() -> None:
    for table in _TABLES.values():
        table.clear()


_STATS = intern.register_cache(
    "expr",
    _clear_tables,
    lambda: sum(len(t) for t in _TABLES.values()),
)


def _intern(table: dict, key, node):
    _STATS.misses += 1
    if len(table) >= _TABLE_CAP:
        _clear_tables()
    table[key] = node
    return node


_set = object.__setattr__


class Expr:
    """Base class for all value expressions."""

    __slots__ = ("width", "_hash", "_vars", "_mems", "size", "depth")

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _fields(self) -> tuple:
        """The structural identity of the node, in dataclass field order."""
        raise NotImplementedError

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._fields() == other._fields()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def children(self) -> Tuple["Expr", ...]:
        """Direct value-expression children (memory children excluded)."""
        return ()

    def variables(self) -> FrozenSet["Var"]:
        """All register/input variables occurring in the expression.

        Computed once per node (first call) and cached; the collection walk
        visits each *distinct* subterm once but preserves the insertion
        order of the pre-interning implementation, so the returned frozenset
        iterates identically.
        """
        cached = self._vars
        if cached is None:
            cached = _collect_variables(self)
            _set(self, "_vars", cached)
        return cached

    def memories(self) -> FrozenSet["MemVar"]:
        """All base memory variables occurring in the expression (cached)."""
        cached = self._mems
        if cached is None:
            cached = _collect_memories(self)
            _set(self, "_mems", cached)
        return cached


def _init_expr(node: Expr, width: int, hashed: int, size: int, depth: int) -> None:
    _set(node, "width", width)
    _set(node, "_hash", hashed)
    _set(node, "_vars", None)
    _set(node, "_mems", None)
    _set(node, "size", size)
    _set(node, "depth", depth)


class Const(Expr):
    """A literal ``width``-bit constant; stored in canonical unsigned form."""

    __slots__ = ("value",)

    def __new__(cls, value: int, width: int = WORD_WIDTH):
        value = bitvec.truncate(value, width)
        key = (value, width)
        table = _TABLES["Const"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        node = object.__new__(cls)
        _set(node, "value", value)
        _init_expr(node, width, hash((value, width)), 1, 1)
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.value, self.width)

    def __reduce__(self):
        return (Const, (self.value, self.width))

    def __repr__(self) -> str:
        return f"Const({self.value:#x}, {self.width})"


class Var(Expr):
    """A named register or symbolic input variable."""

    __slots__ = ("name",)

    def __new__(cls, name: str, width: int = WORD_WIDTH):
        key = (name, width)
        table = _TABLES["Var"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        node = object.__new__(cls)
        _set(node, "name", name)
        _init_expr(node, width, hash((name, width)), 1, 1)
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.name, self.width)

    def __reduce__(self):
        return (Var, (self.name, self.width))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class UnOp(Expr):
    """Unary operator application."""

    __slots__ = ("op", "operand")

    def __new__(cls, op: UnOpKind, operand: Expr):
        key = (op, id(operand))
        table = _TABLES["UnOp"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        width = operand.width
        node = object.__new__(cls)
        _set(node, "op", op)
        _set(node, "operand", operand)
        _init_expr(
            node,
            width,
            hash((op, operand, width)),
            1 + operand.size,
            1 + operand.depth,
        )
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.op, self.operand, self.width)

    def __reduce__(self):
        return (UnOp, (self.op, self.operand))

    def __repr__(self) -> str:
        return f"UnOp({self.op!r}, {self.operand!r})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


class BinOp(Expr):
    """Binary operator application; operand widths must agree."""

    __slots__ = ("op", "lhs", "rhs")

    def __new__(cls, op: BinOpKind, lhs: Expr, rhs: Expr):
        key = (op, id(lhs), id(rhs))
        table = _TABLES["BinOp"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        if lhs.width != rhs.width:
            raise BirTypeError(
                f"{op.value}: operand widths differ "
                f"({lhs.width} vs {rhs.width})"
            )
        width = lhs.width
        node = object.__new__(cls)
        _set(node, "op", op)
        _set(node, "lhs", lhs)
        _set(node, "rhs", rhs)
        _init_expr(
            node,
            width,
            hash((op, lhs, rhs, width)),
            1 + lhs.size + rhs.size,
            1 + max(lhs.depth, rhs.depth),
        )
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.op, self.lhs, self.rhs, self.width)

    def __reduce__(self):
        return (BinOp, (self.op, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.lhs!r}, {self.rhs!r})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


class Cmp(Expr):
    """Comparison; yields a one-bit result."""

    __slots__ = ("op", "lhs", "rhs")

    def __new__(cls, op: CmpKind, lhs: Expr, rhs: Expr):
        key = (op, id(lhs), id(rhs))
        table = _TABLES["Cmp"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        if lhs.width != rhs.width:
            raise BirTypeError(
                f"{op.value}: operand widths differ "
                f"({lhs.width} vs {rhs.width})"
            )
        node = object.__new__(cls)
        _set(node, "op", op)
        _set(node, "lhs", lhs)
        _set(node, "rhs", rhs)
        _init_expr(
            node,
            BOOL_WIDTH,
            hash((op, lhs, rhs, BOOL_WIDTH)),
            1 + lhs.size + rhs.size,
            1 + max(lhs.depth, rhs.depth),
        )
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.op, self.lhs, self.rhs, self.width)

    def __reduce__(self):
        return (Cmp, (self.op, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"Cmp({self.op!r}, {self.lhs!r}, {self.rhs!r})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


class Ite(Expr):
    """If-then-else over a one-bit condition."""

    __slots__ = ("cond", "then", "orelse")

    def __new__(cls, cond: Expr, then: Expr, orelse: Expr):
        key = (id(cond), id(then), id(orelse))
        table = _TABLES["Ite"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        if cond.width != BOOL_WIDTH:
            raise BirTypeError("ite condition must be one bit wide")
        if then.width != orelse.width:
            raise BirTypeError(
                f"ite arms have different widths "
                f"({then.width} vs {orelse.width})"
            )
        width = then.width
        node = object.__new__(cls)
        _set(node, "cond", cond)
        _set(node, "then", then)
        _set(node, "orelse", orelse)
        _init_expr(
            node,
            width,
            hash((cond, then, orelse, width)),
            1 + cond.size + then.size + orelse.size,
            1 + max(cond.depth, then.depth, orelse.depth),
        )
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.cond, self.then, self.orelse, self.width)

    def __reduce__(self):
        return (Ite, (self.cond, self.then, self.orelse))

    def __repr__(self) -> str:
        return f"Ite({self.cond!r}, {self.then!r}, {self.orelse!r})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


class MemExpr:
    """Base class for memory-typed expressions (maps of address -> word)."""

    __slots__ = ("_hash", "_bases", "size", "depth")

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _fields(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._fields() == other._fields()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def base_memories(self) -> FrozenSet["MemVar"]:
        """The base memory variables under this expression (cached)."""
        cached = self._bases
        if cached is None:
            cached = self._compute_bases()
            _set(self, "_bases", cached)
        return cached

    def _compute_bases(self) -> FrozenSet["MemVar"]:
        raise NotImplementedError


class MemVar(MemExpr):
    """A base memory variable (the initial memory of an execution)."""

    __slots__ = ("name",)

    def __new__(cls, name: str = "MEM"):
        key = name
        table = _TABLES["MemVar"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        node = object.__new__(cls)
        _set(node, "name", name)
        _set(node, "_hash", hash((name,)))
        _set(node, "_bases", None)
        _set(node, "size", 1)
        _set(node, "depth", 1)
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.name,)

    def _compute_bases(self) -> FrozenSet["MemVar"]:
        return frozenset({self})

    def __reduce__(self):
        return (MemVar, (self.name,))

    def __repr__(self) -> str:
        return f"MemVar({self.name!r})"


class MemStore(MemExpr):
    """A memory with one word overwritten: ``store(mem, addr, value)``."""

    __slots__ = ("mem", "addr", "value")

    def __new__(cls, mem: MemExpr, addr: Expr, value: Expr):
        key = (id(mem), id(addr), id(value))
        table = _TABLES["MemStore"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        node = object.__new__(cls)
        _set(node, "mem", mem)
        _set(node, "addr", addr)
        _set(node, "value", value)
        _set(node, "_hash", hash((mem, addr, value)))
        _set(node, "_bases", None)
        _set(node, "size", 1 + mem.size + addr.size + value.size)
        _set(node, "depth", 1 + max(mem.depth, addr.depth, value.depth))
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.mem, self.addr, self.value)

    def _compute_bases(self) -> FrozenSet[MemVar]:
        return self.mem.base_memories()

    def __reduce__(self):
        return (MemStore, (self.mem, self.addr, self.value))

    def __repr__(self) -> str:
        return f"MemStore({self.mem!r}, {self.addr!r}, {self.value!r})"


class Load(Expr):
    """A word read from memory: ``select(mem, addr)``."""

    __slots__ = ("mem", "addr")

    def __new__(cls, mem: MemExpr, addr: Expr, width: int = WORD_WIDTH):
        key = (id(mem), id(addr), width)
        table = _TABLES["Load"]
        node = table.get(key)
        if node is not None:
            _STATS.hits += 1
            return node
        node = object.__new__(cls)
        _set(node, "mem", mem)
        _set(node, "addr", addr)
        _init_expr(
            node,
            width,
            hash((mem, addr, width)),
            1 + mem.size + addr.size,
            1 + max(mem.depth, addr.depth),
        )
        if not intern.enabled():
            _STATS.misses += 1
            return node
        return _intern(table, key, node)

    def _fields(self) -> tuple:
        return (self.mem, self.addr, self.width)

    def __reduce__(self):
        return (Load, (self.mem, self.addr, self.width))

    def __repr__(self) -> str:
        return f"Load({self.mem!r}, {self.addr!r}, {self.width})"

    def children(self) -> Tuple[Expr, ...]:
        # The store-chain's addresses/values are reachable via walk(), which
        # special-cases Load.
        return (self.addr,)


TRUE = Const(1, BOOL_WIDTH)
FALSE = Const(0, BOOL_WIDTH)


def const(value: int, width: int = WORD_WIDTH) -> Const:
    """Convenience constructor for :class:`Const`."""
    return Const(value, width)


def var(name: str, width: int = WORD_WIDTH) -> Var:
    """Convenience constructor for :class:`Var`."""
    return Var(name, width)


def bool_not(e: Expr) -> Expr:
    """Boolean negation with light constant folding."""
    if e == TRUE:
        return FALSE
    if e == FALSE:
        return TRUE
    if isinstance(e, UnOp) and e.op is UnOpKind.NOT and e.width == BOOL_WIDTH:
        return e.operand
    if e.width != BOOL_WIDTH:
        raise BirTypeError("bool_not applied to a non-boolean expression")
    return UnOp(UnOpKind.NOT, e)


def bool_and(*es: Expr) -> Expr:
    """N-ary boolean conjunction with light constant folding."""
    acc = TRUE
    for e in es:
        if e.width != BOOL_WIDTH:
            raise BirTypeError("bool_and applied to a non-boolean expression")
        if e == FALSE:
            return FALSE
        if e == TRUE:
            continue
        acc = e if acc == TRUE else BinOp(BinOpKind.AND, acc, e)
    return acc


def bool_or(*es: Expr) -> Expr:
    """N-ary boolean disjunction with light constant folding."""
    acc = FALSE
    for e in es:
        if e.width != BOOL_WIDTH:
            raise BirTypeError("bool_or applied to a non-boolean expression")
        if e == TRUE:
            return TRUE
        if e == FALSE:
            continue
        acc = e if acc == FALSE else BinOp(BinOpKind.OR, acc, e)
    return acc


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every value-expression beneath it, including the
    address/value expressions inside memory store chains.

    Shared subterms of the interned DAG are yielded once per *occurrence*
    (tree semantics), matching the pre-interning behaviour.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Load):
            stack.append(node.addr)
            mem = node.mem
            while isinstance(mem, MemStore):
                stack.append(mem.addr)
                stack.append(mem.value)
                mem = mem.mem
        else:
            stack.extend(node.children())


def _walk_unique(expr: Expr) -> Iterator[Expr]:
    """Like :func:`walk` but visits each distinct subterm once.

    The first-occurrence order equals :func:`walk`'s, so sets built from it
    receive insertions in the same sequence (and iterate identically).
    """
    seen = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        if isinstance(node, Load):
            stack.append(node.addr)
            mem = node.mem
            while isinstance(mem, MemStore):
                stack.append(mem.addr)
                stack.append(mem.value)
                mem = mem.mem
        else:
            stack.extend(node.children())


def _collect_variables(expr: Expr) -> FrozenSet[Var]:
    out = set()
    for node in _walk_unique(expr):
        if isinstance(node, Var):
            out.add(node)
    return frozenset(out)


def _collect_memories(expr: Expr) -> FrozenSet[MemVar]:
    out = set()
    for node in _walk_unique(expr):
        if isinstance(node, Load):
            out.update(node.mem.base_memories())
    return frozenset(out)


def substitute(expr: Expr, mapping: Dict[Var, Expr]) -> Expr:
    """Return ``expr`` with every variable replaced per ``mapping``.

    Memory store chains are rewritten too (their address/value expressions may
    mention variables).  Base memories are left untouched; use
    :func:`substitute_memory` to rename those.  Unchanged subtrees are
    returned as-is (no rebuilding), and shared subterms of the interned DAG
    are rewritten once.
    """

    memo: Dict[int, Expr] = {}
    mem_memo: Dict[int, MemExpr] = {}

    def go(e: Expr) -> Expr:
        out = memo.get(id(e))
        if out is not None:
            return out
        if isinstance(e, Var):
            out = mapping.get(e, e)
        elif isinstance(e, Const):
            out = e
        elif isinstance(e, UnOp):
            operand = go(e.operand)
            out = e if operand is e.operand else UnOp(e.op, operand)
        elif isinstance(e, BinOp):
            lhs, rhs = go(e.lhs), go(e.rhs)
            out = e if (lhs is e.lhs and rhs is e.rhs) else BinOp(e.op, lhs, rhs)
        elif isinstance(e, Cmp):
            lhs, rhs = go(e.lhs), go(e.rhs)
            out = e if (lhs is e.lhs and rhs is e.rhs) else Cmp(e.op, lhs, rhs)
        elif isinstance(e, Ite):
            cond, then, orelse = go(e.cond), go(e.then), go(e.orelse)
            unchanged = cond is e.cond and then is e.then and orelse is e.orelse
            out = e if unchanged else Ite(cond, then, orelse)
        elif isinstance(e, Load):
            mem, addr = go_mem(e.mem), go(e.addr)
            out = e if (mem is e.mem and addr is e.addr) else Load(mem, addr, e.width)
        else:
            raise BirTypeError(f"substitute: unknown expression {e!r}")
        memo[id(e)] = out
        return out

    def go_mem(m: MemExpr) -> MemExpr:
        out = mem_memo.get(id(m))
        if out is not None:
            return out
        if isinstance(m, MemVar):
            out = m
        elif isinstance(m, MemStore):
            mem, addr, value = go_mem(m.mem), go(m.addr), go(m.value)
            unchanged = mem is m.mem and addr is m.addr and value is m.value
            out = m if unchanged else MemStore(mem, addr, value)
        else:
            raise BirTypeError(f"substitute: unknown memory expression {m!r}")
        mem_memo[id(m)] = out
        return out

    return go(expr)


def substitute_memory(expr: Expr, mapping: Dict[MemVar, MemVar]) -> Expr:
    """Return ``expr`` with base memory variables renamed per ``mapping``.

    Subtrees that touch no renamed memory are returned unchanged.
    """

    memo: Dict[int, Expr] = {}
    mem_memo: Dict[int, MemExpr] = {}

    def go(e: Expr) -> Expr:
        out = memo.get(id(e))
        if out is not None:
            return out
        if isinstance(e, (Var, Const)):
            out = e
        elif isinstance(e, UnOp):
            operand = go(e.operand)
            out = e if operand is e.operand else UnOp(e.op, operand)
        elif isinstance(e, BinOp):
            lhs, rhs = go(e.lhs), go(e.rhs)
            out = e if (lhs is e.lhs and rhs is e.rhs) else BinOp(e.op, lhs, rhs)
        elif isinstance(e, Cmp):
            lhs, rhs = go(e.lhs), go(e.rhs)
            out = e if (lhs is e.lhs and rhs is e.rhs) else Cmp(e.op, lhs, rhs)
        elif isinstance(e, Ite):
            cond, then, orelse = go(e.cond), go(e.then), go(e.orelse)
            unchanged = cond is e.cond and then is e.then and orelse is e.orelse
            out = e if unchanged else Ite(cond, then, orelse)
        elif isinstance(e, Load):
            mem, addr = go_mem(e.mem), go(e.addr)
            out = e if (mem is e.mem and addr is e.addr) else Load(mem, addr, e.width)
        else:
            raise BirTypeError(f"substitute_memory: unknown expression {e!r}")
        memo[id(e)] = out
        return out

    def go_mem(m: MemExpr) -> MemExpr:
        out = mem_memo.get(id(m))
        if out is not None:
            return out
        if isinstance(m, MemVar):
            out = mapping.get(m, m)
        elif isinstance(m, MemStore):
            mem, addr, value = go_mem(m.mem), go(m.addr), go(m.value)
            unchanged = mem is m.mem and addr is m.addr and value is m.value
            out = m if unchanged else MemStore(mem, addr, value)
        else:
            raise BirTypeError(f"substitute_memory: unknown memory {m!r}")
        mem_memo[id(m)] = out
        return out

    return go(expr)


_UNOP_FUNCS: Dict[UnOpKind, Callable[[int, int], int]] = {
    UnOpKind.NOT: bitvec.bv_not,
    UnOpKind.NEG: lambda a, w: bitvec.bv_sub(0, a, w),
}

_BINOP_FUNCS: Dict[BinOpKind, Callable[[int, int, int], int]] = {
    BinOpKind.ADD: bitvec.bv_add,
    BinOpKind.SUB: bitvec.bv_sub,
    BinOpKind.MUL: bitvec.bv_mul,
    BinOpKind.AND: bitvec.bv_and,
    BinOpKind.OR: bitvec.bv_or,
    BinOpKind.XOR: bitvec.bv_xor,
    BinOpKind.SHL: lambda a, b, w: bitvec.bv_shl(a, min(b, w), w),
    BinOpKind.LSHR: lambda a, b, w: bitvec.bv_lshr(a, min(b, w), w),
    BinOpKind.ASHR: lambda a, b, w: bitvec.bv_ashr(a, min(b, w), w),
}


def _cmp_value(op: CmpKind, a: int, b: int, width: int) -> int:
    if op is CmpKind.EQ:
        return int(a == b)
    if op is CmpKind.NE:
        return int(a != b)
    if op is CmpKind.ULT:
        return int(a < b)
    if op is CmpKind.ULE:
        return int(a <= b)
    sa = bitvec.to_signed(a, width)
    sb = bitvec.to_signed(b, width)
    if op is CmpKind.SLT:
        return int(sa < sb)
    if op is CmpKind.SLE:
        return int(sa <= sb)
    raise BirTypeError(f"unknown comparison {op!r}")


class Valuation:
    """A concrete assignment of variables and memories, used by ``evaluate``.

    ``regs`` maps variable names to unsigned integers; ``mems`` maps base
    memory names to ``{address: value}`` dictionaries.  Addresses absent from
    a memory evaluate to ``default_mem_value`` — the library convention for
    "uninitialised memory reads as zero", matching the experiment platform,
    which zeroes experiment memory before each run.
    """

    def __init__(self, regs=None, mems=None, default_mem_value: int = 0):
        self.regs: Dict[str, int] = dict(regs or {})
        self.mems: Dict[str, Dict[int, int]] = {
            name: dict(content) for name, content in (mems or {}).items()
        }
        self.default_mem_value = default_mem_value

    def read_mem(self, mem_name: str, addr: int) -> int:
        return self.mems.get(mem_name, {}).get(addr, self.default_mem_value)


def evaluate(expr: Expr, valuation: Valuation) -> int:
    """Evaluate ``expr`` under a concrete valuation; returns an unsigned int."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return bitvec.truncate(valuation.regs[expr.name], expr.width)
        except KeyError:
            raise BirTypeError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, UnOp):
        return _UNOP_FUNCS[expr.op](evaluate(expr.operand, valuation), expr.width)
    if isinstance(expr, BinOp):
        return _BINOP_FUNCS[expr.op](
            evaluate(expr.lhs, valuation), evaluate(expr.rhs, valuation), expr.width
        )
    if isinstance(expr, Cmp):
        return _cmp_value(
            expr.op,
            evaluate(expr.lhs, valuation),
            evaluate(expr.rhs, valuation),
            expr.lhs.width,
        )
    if isinstance(expr, Ite):
        if evaluate(expr.cond, valuation):
            return evaluate(expr.then, valuation)
        return evaluate(expr.orelse, valuation)
    if isinstance(expr, Load):
        return _evaluate_load(expr, valuation)
    raise BirTypeError(f"evaluate: unknown expression {expr!r}")


def _evaluate_load(load: Load, valuation: Valuation) -> int:
    addr = evaluate(load.addr, valuation)
    mem = load.mem
    while isinstance(mem, MemStore):
        if evaluate(mem.addr, valuation) == addr:
            return bitvec.truncate(evaluate(mem.value, valuation), load.width)
        mem = mem.mem
    assert isinstance(mem, MemVar)
    return bitvec.truncate(valuation.read_mem(mem.name, addr), load.width)


# Small comparison helpers used throughout the library.


def eq(lhs: Expr, rhs: Expr) -> Expr:
    if lhs == rhs:
        return TRUE
    return Cmp(CmpKind.EQ, lhs, rhs)


def ne(lhs: Expr, rhs: Expr) -> Expr:
    if lhs == rhs:
        return FALSE
    return Cmp(CmpKind.NE, lhs, rhs)


def ult(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.ULT, lhs, rhs)


def ule(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.ULE, lhs, rhs)


def slt(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.SLT, lhs, rhs)


def sle(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.SLE, lhs, rhs)


def add(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.ADD, lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.SUB, lhs, rhs)


def band(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.AND, lhs, rhs)


def lshr(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.LSHR, lhs, rhs)
