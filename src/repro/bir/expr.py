"""BIR expression language: fixed-width bit-vector terms with memory selects.

Expressions are immutable and hash-consed-free (plain value objects).  Booleans
are one-bit bit-vectors, as in HolBA's BIR; :data:`TRUE` and :data:`FALSE` are
the canonical constants.

The language is deliberately small: constants, variables, unary and binary
bit-vector operators, comparisons, if-then-else, and memory ``Load`` over a
memory expression that is either the initial memory (:class:`MemVar`) or a
store chain (:class:`MemStore`).  This is exactly the fragment the templates
of the paper produce, and it keeps the symbolic executor, evaluator and the
model finder complete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, Tuple

from repro.errors import BirTypeError
from repro.utils import bitvec

BOOL_WIDTH = 1
WORD_WIDTH = 64


class UnOpKind(enum.Enum):
    """Unary bit-vector operators."""

    NOT = "not"  # bitwise complement
    NEG = "neg"  # two's-complement negation


class BinOpKind(enum.Enum):
    """Binary bit-vector operators (operands and result share a width)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"


class CmpKind(enum.Enum):
    """Comparison operators; result is a one-bit bit-vector."""

    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    SLT = "slt"
    SLE = "sle"


class Expr:
    """Base class for all value expressions."""

    width: int

    def children(self) -> Tuple["Expr", ...]:
        """Direct value-expression children (memory children excluded)."""
        return ()

    def variables(self) -> FrozenSet["Var"]:
        """All register/input variables occurring in the expression."""
        out = set()
        for node in walk(self):
            if isinstance(node, Var):
                out.add(node)
        return frozenset(out)

    def memories(self) -> FrozenSet["MemVar"]:
        """All base memory variables occurring in the expression."""
        out = set()
        for node in walk(self):
            if isinstance(node, Load):
                out.update(node.mem.base_memories())
        return frozenset(out)


@dataclass(frozen=True)
class Const(Expr):
    """A literal ``width``-bit constant; stored in canonical unsigned form."""

    value: int
    width: int = WORD_WIDTH

    def __post_init__(self):
        canonical = bitvec.truncate(self.value, self.width)
        object.__setattr__(self, "value", canonical)

    def __repr__(self) -> str:
        return f"Const({self.value:#x}, {self.width})"


@dataclass(frozen=True)
class Var(Expr):
    """A named register or symbolic input variable."""

    name: str
    width: int = WORD_WIDTH

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operator application."""

    op: UnOpKind
    operand: Expr
    width: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "width", self.operand.width)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator application; operand widths must agree."""

    op: BinOpKind
    lhs: Expr
    rhs: Expr
    width: int = field(init=False)

    def __post_init__(self):
        if self.lhs.width != self.rhs.width:
            raise BirTypeError(
                f"{self.op.value}: operand widths differ "
                f"({self.lhs.width} vs {self.rhs.width})"
            )
        object.__setattr__(self, "width", self.lhs.width)

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison; yields a one-bit result."""

    op: CmpKind
    lhs: Expr
    rhs: Expr
    width: int = field(init=False, default=BOOL_WIDTH)

    def __post_init__(self):
        if self.lhs.width != self.rhs.width:
            raise BirTypeError(
                f"{self.op.value}: operand widths differ "
                f"({self.lhs.width} vs {self.rhs.width})"
            )
        object.__setattr__(self, "width", BOOL_WIDTH)

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else over a one-bit condition."""

    cond: Expr
    then: Expr
    orelse: Expr
    width: int = field(init=False)

    def __post_init__(self):
        if self.cond.width != BOOL_WIDTH:
            raise BirTypeError("ite condition must be one bit wide")
        if self.then.width != self.orelse.width:
            raise BirTypeError(
                f"ite arms have different widths "
                f"({self.then.width} vs {self.orelse.width})"
            )
        object.__setattr__(self, "width", self.then.width)

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


class MemExpr:
    """Base class for memory-typed expressions (maps of address -> word)."""

    def base_memories(self) -> FrozenSet["MemVar"]:
        raise NotImplementedError


@dataclass(frozen=True)
class MemVar(MemExpr):
    """A base memory variable (the initial memory of an execution)."""

    name: str = "MEM"

    def base_memories(self) -> FrozenSet["MemVar"]:
        return frozenset({self})

    def __repr__(self) -> str:
        return f"MemVar({self.name!r})"


@dataclass(frozen=True)
class MemStore(MemExpr):
    """A memory with one word overwritten: ``store(mem, addr, value)``."""

    mem: MemExpr
    addr: Expr
    value: Expr

    def base_memories(self) -> FrozenSet[MemVar]:
        return self.mem.base_memories()


@dataclass(frozen=True)
class Load(Expr):
    """A word read from memory: ``select(mem, addr)``."""

    mem: MemExpr
    addr: Expr
    width: int = WORD_WIDTH

    def children(self) -> Tuple[Expr, ...]:
        # The store-chain's addresses/values are reachable via walk(), which
        # special-cases Load.
        return (self.addr,)


TRUE = Const(1, BOOL_WIDTH)
FALSE = Const(0, BOOL_WIDTH)


def const(value: int, width: int = WORD_WIDTH) -> Const:
    """Convenience constructor for :class:`Const`."""
    return Const(value, width)


def var(name: str, width: int = WORD_WIDTH) -> Var:
    """Convenience constructor for :class:`Var`."""
    return Var(name, width)


def bool_not(e: Expr) -> Expr:
    """Boolean negation with light constant folding."""
    if e == TRUE:
        return FALSE
    if e == FALSE:
        return TRUE
    if isinstance(e, UnOp) and e.op is UnOpKind.NOT and e.width == BOOL_WIDTH:
        return e.operand
    if e.width != BOOL_WIDTH:
        raise BirTypeError("bool_not applied to a non-boolean expression")
    return UnOp(UnOpKind.NOT, e)


def bool_and(*es: Expr) -> Expr:
    """N-ary boolean conjunction with light constant folding."""
    acc = TRUE
    for e in es:
        if e.width != BOOL_WIDTH:
            raise BirTypeError("bool_and applied to a non-boolean expression")
        if e == FALSE:
            return FALSE
        if e == TRUE:
            continue
        acc = e if acc == TRUE else BinOp(BinOpKind.AND, acc, e)
    return acc


def bool_or(*es: Expr) -> Expr:
    """N-ary boolean disjunction with light constant folding."""
    acc = FALSE
    for e in es:
        if e.width != BOOL_WIDTH:
            raise BirTypeError("bool_or applied to a non-boolean expression")
        if e == TRUE:
            return TRUE
        if e == FALSE:
            continue
        acc = e if acc == FALSE else BinOp(BinOpKind.OR, acc, e)
    return acc


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every value-expression beneath it, including the
    address/value expressions inside memory store chains."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Load):
            stack.append(node.addr)
            mem = node.mem
            while isinstance(mem, MemStore):
                stack.append(mem.addr)
                stack.append(mem.value)
                mem = mem.mem
        else:
            stack.extend(node.children())


def substitute(expr: Expr, mapping: Dict[Var, Expr]) -> Expr:
    """Return ``expr`` with every variable replaced per ``mapping``.

    Memory store chains are rewritten too (their address/value expressions may
    mention variables).  Base memories are left untouched; use
    :func:`substitute_memory` to rename those.
    """

    def go(e: Expr) -> Expr:
        if isinstance(e, Var):
            return mapping.get(e, e)
        if isinstance(e, Const):
            return e
        if isinstance(e, UnOp):
            return UnOp(e.op, go(e.operand))
        if isinstance(e, BinOp):
            return BinOp(e.op, go(e.lhs), go(e.rhs))
        if isinstance(e, Cmp):
            return Cmp(e.op, go(e.lhs), go(e.rhs))
        if isinstance(e, Ite):
            return Ite(go(e.cond), go(e.then), go(e.orelse))
        if isinstance(e, Load):
            return Load(go_mem(e.mem), go(e.addr), e.width)
        raise BirTypeError(f"substitute: unknown expression {e!r}")

    def go_mem(m: MemExpr) -> MemExpr:
        if isinstance(m, MemVar):
            return m
        if isinstance(m, MemStore):
            return MemStore(go_mem(m.mem), go(m.addr), go(m.value))
        raise BirTypeError(f"substitute: unknown memory expression {m!r}")

    return go(expr)


def substitute_memory(expr: Expr, mapping: Dict[MemVar, MemVar]) -> Expr:
    """Return ``expr`` with base memory variables renamed per ``mapping``."""

    def go(e: Expr) -> Expr:
        if isinstance(e, (Var, Const)):
            return e
        if isinstance(e, UnOp):
            return UnOp(e.op, go(e.operand))
        if isinstance(e, BinOp):
            return BinOp(e.op, go(e.lhs), go(e.rhs))
        if isinstance(e, Cmp):
            return Cmp(e.op, go(e.lhs), go(e.rhs))
        if isinstance(e, Ite):
            return Ite(go(e.cond), go(e.then), go(e.orelse))
        if isinstance(e, Load):
            return Load(go_mem(e.mem), go(e.addr), e.width)
        raise BirTypeError(f"substitute_memory: unknown expression {e!r}")

    def go_mem(m: MemExpr) -> MemExpr:
        if isinstance(m, MemVar):
            return mapping.get(m, m)
        if isinstance(m, MemStore):
            return MemStore(go_mem(m.mem), go(m.addr), go(m.value))
        raise BirTypeError(f"substitute_memory: unknown memory {m!r}")

    return go(expr)


_UNOP_FUNCS: Dict[UnOpKind, Callable[[int, int], int]] = {
    UnOpKind.NOT: bitvec.bv_not,
    UnOpKind.NEG: lambda a, w: bitvec.bv_sub(0, a, w),
}

_BINOP_FUNCS: Dict[BinOpKind, Callable[[int, int, int], int]] = {
    BinOpKind.ADD: bitvec.bv_add,
    BinOpKind.SUB: bitvec.bv_sub,
    BinOpKind.MUL: bitvec.bv_mul,
    BinOpKind.AND: bitvec.bv_and,
    BinOpKind.OR: bitvec.bv_or,
    BinOpKind.XOR: bitvec.bv_xor,
    BinOpKind.SHL: lambda a, b, w: bitvec.bv_shl(a, min(b, w), w),
    BinOpKind.LSHR: lambda a, b, w: bitvec.bv_lshr(a, min(b, w), w),
    BinOpKind.ASHR: lambda a, b, w: bitvec.bv_ashr(a, min(b, w), w),
}


def _cmp_value(op: CmpKind, a: int, b: int, width: int) -> int:
    if op is CmpKind.EQ:
        return int(a == b)
    if op is CmpKind.NE:
        return int(a != b)
    if op is CmpKind.ULT:
        return int(a < b)
    if op is CmpKind.ULE:
        return int(a <= b)
    sa = bitvec.to_signed(a, width)
    sb = bitvec.to_signed(b, width)
    if op is CmpKind.SLT:
        return int(sa < sb)
    if op is CmpKind.SLE:
        return int(sa <= sb)
    raise BirTypeError(f"unknown comparison {op!r}")


class Valuation:
    """A concrete assignment of variables and memories, used by ``evaluate``.

    ``regs`` maps variable names to unsigned integers; ``mems`` maps base
    memory names to ``{address: value}`` dictionaries.  Addresses absent from
    a memory evaluate to ``default_mem_value`` — the library convention for
    "uninitialised memory reads as zero", matching the experiment platform,
    which zeroes experiment memory before each run.
    """

    def __init__(self, regs=None, mems=None, default_mem_value: int = 0):
        self.regs: Dict[str, int] = dict(regs or {})
        self.mems: Dict[str, Dict[int, int]] = {
            name: dict(content) for name, content in (mems or {}).items()
        }
        self.default_mem_value = default_mem_value

    def read_mem(self, mem_name: str, addr: int) -> int:
        return self.mems.get(mem_name, {}).get(addr, self.default_mem_value)


def evaluate(expr: Expr, valuation: Valuation) -> int:
    """Evaluate ``expr`` under a concrete valuation; returns an unsigned int."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return bitvec.truncate(valuation.regs[expr.name], expr.width)
        except KeyError:
            raise BirTypeError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, UnOp):
        return _UNOP_FUNCS[expr.op](evaluate(expr.operand, valuation), expr.width)
    if isinstance(expr, BinOp):
        return _BINOP_FUNCS[expr.op](
            evaluate(expr.lhs, valuation), evaluate(expr.rhs, valuation), expr.width
        )
    if isinstance(expr, Cmp):
        return _cmp_value(
            expr.op,
            evaluate(expr.lhs, valuation),
            evaluate(expr.rhs, valuation),
            expr.lhs.width,
        )
    if isinstance(expr, Ite):
        if evaluate(expr.cond, valuation):
            return evaluate(expr.then, valuation)
        return evaluate(expr.orelse, valuation)
    if isinstance(expr, Load):
        return _evaluate_load(expr, valuation)
    raise BirTypeError(f"evaluate: unknown expression {expr!r}")


def _evaluate_load(load: Load, valuation: Valuation) -> int:
    addr = evaluate(load.addr, valuation)
    mem = load.mem
    while isinstance(mem, MemStore):
        if evaluate(mem.addr, valuation) == addr:
            return bitvec.truncate(evaluate(mem.value, valuation), load.width)
        mem = mem.mem
    assert isinstance(mem, MemVar)
    return bitvec.truncate(valuation.read_mem(mem.name, addr), load.width)


# Small comparison helpers used throughout the library.


def eq(lhs: Expr, rhs: Expr) -> Expr:
    if lhs == rhs:
        return TRUE
    return Cmp(CmpKind.EQ, lhs, rhs)


def ne(lhs: Expr, rhs: Expr) -> Expr:
    if lhs == rhs:
        return FALSE
    return Cmp(CmpKind.NE, lhs, rhs)


def ult(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.ULT, lhs, rhs)


def ule(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.ULE, lhs, rhs)


def slt(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.SLT, lhs, rhs)


def sle(lhs: Expr, rhs: Expr) -> Expr:
    return Cmp(CmpKind.SLE, lhs, rhs)


def add(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.ADD, lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.SUB, lhs, rhs)


def band(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.AND, lhs, rhs)


def lshr(lhs: Expr, rhs: Expr) -> Expr:
    return BinOp(BinOpKind.LSHR, lhs, rhs)
