"""Light algebraic simplification of BIR expressions.

Keeps symbolic terms small during symbolic execution and normalises
constraints before they reach the model finder.  Only rules that are cheap
and always sound are applied: constant folding, identity/zero elements, and
select-over-store resolution when addresses are syntactically decidable.

``simplify`` is pure, so its results are memoized by (interned) node in a
bounded campaign-scoped cache: shared subterms of the hash-consed DAG are
simplified once per table generation instead of once per occurrence.  The
rules themselves are unchanged from the pre-interning implementation.
"""

from __future__ import annotations

from typing import Dict

from repro.bir import expr as E
from repro.bir import intern
from repro.utils import bitvec

# node -> simplified node.  Simplified results are fixpoints of the rule
# set, so they map to themselves — re-simplifying an already-simplified
# term is a cache hit, not a re-walk.
_CACHE: Dict[E.Expr, E.Expr] = {}
_MEM_CACHE: Dict[E.MemExpr, E.MemExpr] = {}
_CACHE_CAP = 1 << 18


def _clear() -> None:
    _CACHE.clear()
    _MEM_CACHE.clear()


_STATS = intern.register_cache(
    "simplify", _clear, lambda: len(_CACHE) + len(_MEM_CACHE)
)


def simplify(expr: E.Expr) -> E.Expr:
    """Return an equivalent, usually smaller, expression."""
    if isinstance(expr, (E.Const, E.Var)):
        return expr
    cached = _CACHE.get(expr)
    if cached is not None:
        _STATS.hits += 1
        return cached
    _STATS.misses += 1
    out = _simplify(expr)
    if intern.enabled():
        if len(_CACHE) >= _CACHE_CAP:
            _CACHE.clear()
        _CACHE[expr] = out
        _CACHE[out] = out
    return out


def _simplify(expr: E.Expr) -> E.Expr:
    if isinstance(expr, E.UnOp):
        return _simplify_unop(expr)
    if isinstance(expr, E.BinOp):
        return _simplify_binop(expr)
    if isinstance(expr, E.Cmp):
        return _simplify_cmp(expr)
    if isinstance(expr, E.Ite):
        return _simplify_ite(expr)
    if isinstance(expr, E.Load):
        return _simplify_load(expr)
    return expr


def _simplify_unop(expr: E.UnOp) -> E.Expr:
    operand = simplify(expr.operand)
    if isinstance(operand, E.Const):
        value = E._UNOP_FUNCS[expr.op](operand.value, expr.width)
        return E.Const(value, expr.width)
    if isinstance(operand, E.UnOp) and operand.op is expr.op:
        # ~~x == x and -(-x) == x
        return operand.operand
    return E.UnOp(expr.op, operand)


def _simplify_binop(expr: E.BinOp) -> E.Expr:
    lhs = simplify(expr.lhs)
    rhs = simplify(expr.rhs)
    width = expr.width
    if isinstance(lhs, E.Const) and isinstance(rhs, E.Const):
        value = E._BINOP_FUNCS[expr.op](lhs.value, rhs.value, width)
        return E.Const(value, width)
    zero = E.Const(0, width)
    op = expr.op
    if op is E.BinOpKind.ADD:
        if lhs == zero:
            return rhs
        if rhs == zero:
            return lhs
        # Reassociate (x + c1) + c2 into x + (c1 + c2): template address
        # arithmetic produces these chains constantly.
        if (
            isinstance(rhs, E.Const)
            and isinstance(lhs, E.BinOp)
            and lhs.op is E.BinOpKind.ADD
            and isinstance(lhs.rhs, E.Const)
        ):
            folded = bitvec.bv_add(lhs.rhs.value, rhs.value, width)
            return _simplify_binop(
                E.BinOp(E.BinOpKind.ADD, lhs.lhs, E.Const(folded, width))
            )
    elif op is E.BinOpKind.SUB:
        if rhs == zero:
            return lhs
        if lhs == rhs:
            return zero
    elif op is E.BinOpKind.MUL:
        one = E.Const(1, width)
        if lhs == zero or rhs == zero:
            return zero
        if lhs == one:
            return rhs
        if rhs == one:
            return lhs
    elif op is E.BinOpKind.AND:
        ones = E.Const(bitvec.mask(width), width)
        if lhs == zero or rhs == zero:
            return zero
        if lhs == ones:
            return rhs
        if rhs == ones:
            return lhs
        if lhs == rhs:
            return lhs
    elif op is E.BinOpKind.OR:
        ones = E.Const(bitvec.mask(width), width)
        if lhs == ones or rhs == ones:
            return ones
        if lhs == zero:
            return rhs
        if rhs == zero:
            return lhs
        if lhs == rhs:
            return lhs
    elif op is E.BinOpKind.XOR:
        if lhs == rhs:
            return zero
        if lhs == zero:
            return rhs
        if rhs == zero:
            return lhs
    elif op in (E.BinOpKind.SHL, E.BinOpKind.LSHR, E.BinOpKind.ASHR):
        if rhs == zero:
            return lhs
    return E.BinOp(op, lhs, rhs)


def _simplify_cmp(expr: E.Cmp) -> E.Expr:
    lhs = simplify(expr.lhs)
    rhs = simplify(expr.rhs)
    if isinstance(lhs, E.Const) and isinstance(rhs, E.Const):
        value = E._cmp_value(expr.op, lhs.value, rhs.value, lhs.width)
        return E.TRUE if value else E.FALSE
    if lhs == rhs:
        if expr.op in (E.CmpKind.EQ, E.CmpKind.ULE, E.CmpKind.SLE):
            return E.TRUE
        if expr.op in (E.CmpKind.NE, E.CmpKind.ULT, E.CmpKind.SLT):
            return E.FALSE
    return E.Cmp(expr.op, lhs, rhs)


def _simplify_ite(expr: E.Ite) -> E.Expr:
    cond = simplify(expr.cond)
    if cond == E.TRUE:
        return simplify(expr.then)
    if cond == E.FALSE:
        return simplify(expr.orelse)
    then = simplify(expr.then)
    orelse = simplify(expr.orelse)
    if then == orelse:
        return then
    return E.Ite(cond, then, orelse)


def _simplify_load(expr: E.Load) -> E.Expr:
    addr = simplify(expr.addr)
    mem = _simplify_mem(expr.mem)
    # Resolve select-over-store when the comparison is syntactically decidable.
    while isinstance(mem, E.MemStore):
        store_addr = mem.addr
        if store_addr == addr:
            return simplify(mem.value)
        if isinstance(store_addr, E.Const) and isinstance(addr, E.Const):
            # Distinct constants: skip this store.
            mem = mem.mem
            continue
        break
    return E.Load(mem, addr, expr.width)


def _simplify_mem(mem: E.MemExpr) -> E.MemExpr:
    if isinstance(mem, E.MemVar):
        return mem
    if isinstance(mem, E.MemStore):
        cached = _MEM_CACHE.get(mem)
        if cached is not None:
            _STATS.hits += 1
            return cached
        _STATS.misses += 1
        out = E.MemStore(
            _simplify_mem(mem.mem), simplify(mem.addr), simplify(mem.value)
        )
        if intern.enabled():
            if len(_MEM_CACHE) >= _CACHE_CAP:
                _MEM_CACHE.clear()
            _MEM_CACHE[mem] = out
            _MEM_CACHE[out] = out
        return out
    return mem
