"""Control-flow graph over BIR programs.

Used by the speculative instrumentation pass (§4.2.2 of the paper) to find
pairs of mutually exclusive branches, and by the symbolic executor to reject
programs with loops (the templates are loop-free; symbolic execution here is
exhaustive path enumeration).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bir.program import Program
from repro.bir.stmt import CJmp
from repro.errors import BirError


class ControlFlowGraph:
    """Successor/predecessor maps plus a few standard graph queries."""

    def __init__(self, program: Program):
        self.program = program
        self.successors: Dict[str, Tuple[str, ...]] = {}
        self.predecessors: Dict[str, List[str]] = {lbl: [] for lbl in program.labels}
        for block in program:
            succs = block.successors()
            self.successors[block.label] = succs
            for s in succs:
                self.predecessors[s].append(block.label)

    def reachable(self) -> Set[str]:
        """Labels reachable from the entry block."""
        seen: Set[str] = set()
        stack = [self.program.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.successors[label])
        return seen

    def is_acyclic(self) -> bool:
        """True iff the reachable portion of the graph has no cycles."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {lbl: WHITE for lbl in self.program.labels}

        def visit(label: str) -> bool:
            color[label] = GRAY
            for succ in self.successors[label]:
                if color[succ] == GRAY:
                    return False
                if color[succ] == WHITE and not visit(succ):
                    return False
            color[label] = BLACK
            return True

        return visit(self.program.entry)

    def topological_order(self) -> List[str]:
        """Reverse-postorder of the reachable blocks; raises on cycles."""
        if not self.is_acyclic():
            raise BirError(f"program {self.program.name!r} has a control-flow cycle")
        order: List[str] = []
        seen: Set[str] = set()

        def visit(label: str) -> None:
            if label in seen:
                return
            seen.add(label)
            for succ in self.successors[label]:
                visit(succ)
            order.append(label)

        visit(self.program.entry)
        order.reverse()
        return order

    def branch_points(self) -> List[Tuple[str, CJmp]]:
        """All conditional branches as ``(block_label, terminator)`` pairs."""
        out = []
        for block in self.program:
            if isinstance(block.terminator, CJmp):
                out.append((block.label, block.terminator))
        return out

    def blocks_on_path_from(self, start: str) -> Set[str]:
        """All labels reachable from ``start`` (inclusive)."""
        seen: Set[str] = set()
        stack = [start]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.successors[label])
        return seen

    def mutually_exclusive_arms(self) -> List[Tuple[str, str, str]]:
        """For every conditional branch, the pair of arm entry labels.

        Returns ``(branch_block, true_arm, false_arm)`` triples.  The
        speculative instrumentation pass prepends shadow copies of one arm's
        statements to the other arm (§4.2.2).
        """
        return [
            (label, t.target_true, t.target_false)
            for label, t in self.branch_points()
        ]
