"""BIR programs: labelled blocks of straight-line statements.

A :class:`Program` is an ordered mapping of labels to :class:`Block` objects.
The first block is the entry point.  Programs are immutable once validated;
transformation passes build new programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Statement, Store
from repro.errors import BirError

_BODY_TYPES = (Assign, Store, Observe)
_TERMINATOR_TYPES = (Jmp, CJmp, Halt)


@dataclass(frozen=True)
class Block:
    """A basic block: a label, body statements, and one terminator."""

    label: str
    body: Tuple[Statement, ...]
    terminator: Statement

    def __post_init__(self):
        for stmt in self.body:
            if not isinstance(stmt, _BODY_TYPES):
                raise BirError(
                    f"block {self.label!r}: {type(stmt).__name__} cannot appear "
                    "in a block body"
                )
        if not isinstance(self.terminator, _TERMINATOR_TYPES):
            raise BirError(
                f"block {self.label!r}: terminator must be Jmp/CJmp/Halt, got "
                f"{type(self.terminator).__name__}"
            )
        object.__setattr__(self, "body", tuple(self.body))

    def successors(self) -> Tuple[str, ...]:
        """Labels this block can transfer control to."""
        t = self.terminator
        if isinstance(t, Jmp):
            return (t.target,)
        if isinstance(t, CJmp):
            return (t.target_true, t.target_false)
        return ()

    def with_body(self, body: Iterable[Statement]) -> "Block":
        """A copy of this block with a replaced body."""
        return Block(self.label, tuple(body), self.terminator)


class Program:
    """An immutable, validated BIR program."""

    def __init__(self, blocks: Iterable[Block], name: str = "program"):
        block_list = list(blocks)
        if not block_list:
            raise BirError("a program needs at least one block")
        self.name = name
        self._blocks: Dict[str, Block] = {}
        self._order: List[str] = []
        for block in block_list:
            if block.label in self._blocks:
                raise BirError(f"duplicate block label {block.label!r}")
            self._blocks[block.label] = block
            self._order.append(block.label)
        self.entry = block_list[0].label
        self._validate_targets()

    def _validate_targets(self) -> None:
        for block in self:
            for target in block.successors():
                if target not in self._blocks:
                    raise BirError(
                        f"block {block.label!r} jumps to undefined label "
                        f"{target!r}"
                    )

    def __iter__(self) -> Iterator[Block]:
        return (self._blocks[label] for label in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, label: str) -> bool:
        return label in self._blocks

    def block(self, label: str) -> Block:
        """Look up a block by label."""
        try:
            return self._blocks[label]
        except KeyError:
            raise BirError(f"no block labelled {label!r}") from None

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def entry_block(self) -> Block:
        return self._blocks[self.entry]

    def map_blocks(self, fn) -> "Program":
        """A new program with ``fn`` applied to every block (same order)."""
        return Program([fn(b) for b in self], name=self.name)

    def statements(self) -> Iterator[Tuple[str, Statement]]:
        """Yield ``(label, statement)`` for every statement, including
        terminators, in block order."""
        for block in self:
            for stmt in block.body:
                yield block.label, stmt
            yield block.label, block.terminator

    def count_observations(self) -> int:
        """Number of Observe statements in the program."""
        return sum(1 for _lbl, s in self.statements() if isinstance(s, Observe))
