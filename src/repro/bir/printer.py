"""Human-readable formatting of BIR expressions, statements and programs."""

from __future__ import annotations

from repro.bir.expr import (
    BinOp,
    BinOpKind,
    Cmp,
    CmpKind,
    Const,
    Expr,
    Ite,
    Load,
    MemExpr,
    MemStore,
    MemVar,
    UnOp,
    UnOpKind,
    Var,
)
from repro.bir.program import Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Statement, Store

_BINOP_SYMBOLS = {
    BinOpKind.ADD: "+",
    BinOpKind.SUB: "-",
    BinOpKind.MUL: "*",
    BinOpKind.AND: "&",
    BinOpKind.OR: "|",
    BinOpKind.XOR: "^",
    BinOpKind.SHL: "<<",
    BinOpKind.LSHR: ">>u",
    BinOpKind.ASHR: ">>s",
}

_CMP_SYMBOLS = {
    CmpKind.EQ: "==",
    CmpKind.NE: "!=",
    CmpKind.ULT: "<u",
    CmpKind.ULE: "<=u",
    CmpKind.SLT: "<s",
    CmpKind.SLE: "<=s",
}

_UNOP_SYMBOLS = {UnOpKind.NOT: "~", UnOpKind.NEG: "-"}


def format_expr(expr: Expr) -> str:
    """Render an expression as compact infix text."""
    if isinstance(expr, Const):
        return hex(expr.value) if expr.value >= 10 else str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnOp):
        return f"{_UNOP_SYMBOLS[expr.op]}{format_expr(expr.operand)}"
    if isinstance(expr, BinOp):
        return (
            f"({format_expr(expr.lhs)} {_BINOP_SYMBOLS[expr.op]} "
            f"{format_expr(expr.rhs)})"
        )
    if isinstance(expr, Cmp):
        return (
            f"({format_expr(expr.lhs)} {_CMP_SYMBOLS[expr.op]} "
            f"{format_expr(expr.rhs)})"
        )
    if isinstance(expr, Ite):
        return (
            f"(if {format_expr(expr.cond)} then {format_expr(expr.then)} "
            f"else {format_expr(expr.orelse)})"
        )
    if isinstance(expr, Load):
        return f"{_format_mem(expr.mem)}[{format_expr(expr.addr)}]"
    return repr(expr)


def _format_mem(mem: MemExpr) -> str:
    if isinstance(mem, MemVar):
        return mem.name
    if isinstance(mem, MemStore):
        return (
            f"{_format_mem(mem.mem)}"
            f"{{{format_expr(mem.addr)} := {format_expr(mem.value)}}}"
        )
    return repr(mem)


def format_stmt(stmt: Statement) -> str:
    """Render a statement on one line."""
    if isinstance(stmt, Assign):
        return f"{stmt.target.name} := {format_expr(stmt.value)}"
    if isinstance(stmt, Store):
        return (
            f"{stmt.mem.name}[{format_expr(stmt.addr)}] := "
            f"{format_expr(stmt.value)}"
        )
    if isinstance(stmt, Observe):
        exprs = ", ".join(format_expr(e) for e in stmt.exprs)
        guard = ""
        from repro.bir.expr import TRUE

        if stmt.guard != TRUE:
            guard = f" when {format_expr(stmt.guard)}"
        tag = getattr(stmt.tag, "name", str(stmt.tag))
        label = f" ({stmt.label})" if stmt.label else ""
        return f"observe<{tag}>[{exprs}]{guard}{label}"
    if isinstance(stmt, Jmp):
        return f"jmp {stmt.target}"
    if isinstance(stmt, CJmp):
        return (
            f"cjmp {format_expr(stmt.cond)} ? {stmt.target_true} "
            f": {stmt.target_false}"
        )
    if isinstance(stmt, Halt):
        return f"halt ({stmt.reason})"
    return repr(stmt)


def format_program(program: Program) -> str:
    """Render a whole program, one block per paragraph."""
    lines = [f"program {program.name}:"]
    for block in program:
        lines.append(f"{block.label}:")
        for stmt in block.body:
            lines.append(f"  {format_stmt(stmt)}")
        lines.append(f"  {format_stmt(block.terminator)}")
    return "\n".join(lines)
