"""The service client: talk JSON to a running campaign daemon.

Used by the ``submit``/``status``/``results``/``cancel`` CLI verbs and by
tests; stdlib :mod:`urllib.request` only.  Server-reported errors (the
``{"error": ...}`` documents of :mod:`repro.service.api`) surface as
:class:`~repro.errors.ServiceError` with the server's message, so CLI
output matches what the daemon actually objected to.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service.api import API_PREFIX
from repro.service.daemon import DEFAULT_HOST, DEFAULT_PORT

#: Where the CLI verbs look for the daemon unless ``--url`` says otherwise.
DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class ServiceClient:
    """A thin JSON-over-HTTP client for one daemon."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.url}{API_PREFIX}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_message(exc)) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"service returned invalid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ServiceError("service returned a non-object document")
        return doc

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            detail = doc.get("error")
        except Exception:
            detail = None
        if detail:
            return f"service error ({exc.code}): {detail}"
        return f"service error ({exc.code}): {exc.reason}"

    # -- API ------------------------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def healthz(self) -> Dict:
        """The probe alias — same document as :meth:`health`."""
        return self._request("GET", "/health")

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (``GET /metrics``)."""
        request = urllib.request.Request(
            f"{self.url}/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_message(exc)) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc

    def submit(self, spec_doc: Dict, priority: Optional[int] = None) -> Dict:
        body: Dict = {"spec": spec_doc}
        if priority is not None:
            body["priority"] = priority
        return self._request("POST", "/jobs", body)

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: Optional[int] = None) -> Dict:
        if job_id is None:
            return self._request("GET", "/jobs")
        return self._request("GET", f"/jobs/{job_id}")

    def results(self, job_id: int) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: int) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: int,
        timeout: float = 300.0,
        poll: float = 0.25,
    ) -> Dict:
        """Poll until the job leaves the active states; returns its doc.

        Raises :class:`ServiceError` on timeout — the job is still queued
        or running, and the caller decides whether that is a failure.
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") not in ("queued", "running"):
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc.get('state')} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)
