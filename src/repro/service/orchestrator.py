"""The batch orchestrator: drain the job queue through the campaign runner.

Claims jobs in priority order and executes each through the existing
:class:`~repro.runner.ParallelRunner` process pool under one global worker
budget.  The queue is orchestration, never semantics: a job's campaign
result is the same :class:`~repro.pipeline.result.CampaignResult` the
equivalent one-shot ``repro-scamv validate`` invocation produces — the
deterministic payload written to each job's ``result.json`` is
byte-identical at any worker count and against the one-shot path.

Fault model:

* Every job journals completed shards to its own ``checkpoint.jsonl``
  (``resume=True``), so a requeued or crash-recovered job resumes instead
  of restarting.
* SIGTERM/SIGINT during a job (foreground mode: ``run-all``, ``serve``)
  raises :class:`ShutdownRequested` in the scheduler loop; the in-flight
  job is requeued — its journal keeps the finished shards — and the drain
  loop exits cleanly.
* A job cancelled mid-run keeps its ``cancelled`` state: the finishing
  transition is guarded in the queue, and the orchestrator discards the
  result.

Artifacts per job, under ``<artifact_root>/job-<id>-<name>/``:
``checkpoint.jsonl`` (resume journal), ``events.jsonl`` (runner event
stream, tailable by ``repro-scamv monitor``), ``result.json`` (canonical
deterministic campaign document), ``summary.json`` (stats row incl.
timings), ``ledger.json`` (coverage, when monitoring), and
``dashboard.html`` when enabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.errors import ServiceError
from repro.pipeline.config import CampaignConfig
from repro.pipeline.result import CampaignResult, ExperimentRecord
from repro.runner import (
    ParallelRunner,
    RunnerConfig,
    jsonl_sink,
    progress_printer,
    tee,
)
from repro.service.queue import Job, JobQueue
from repro.service.spec import ScenarioSpec, parse_spec
from repro.telemetry import trace as ttrace
from repro.telemetry.trace import span as tspan


class ShutdownRequested(Exception):
    """Raised into the foreground drain loop by the signal handlers."""


@dataclass(frozen=True)
class OrchestratorConfig:
    """Scheduling knobs, orthogonal to what any campaign computes."""

    #: Global worker budget: each job's shards run across a pool of (at
    #: most) this many processes.
    workers: int = 1
    #: Root directory for per-job artifact directories.
    artifact_root: str = "scamv-artifacts"
    #: Seconds the daemon's drain loop sleeps between empty-queue polls.
    poll_interval: float = 0.5
    #: Write a self-contained HTML dashboard per job.
    dashboards: bool = False
    #: Identity string recorded on claimed jobs (defaults to the pid).
    worker_name: Optional[str] = None
    #: Record every finished job in the cross-run history store
    #: (``<artifact_root>/history.sqlite`` unless ``history_path`` is set).
    history: bool = True
    history_path: Optional[str] = None


def deterministic_record(record: ExperimentRecord) -> Dict:
    """An experiment record's JSON form minus the wall-clock fields.

    ``gen_time``/``exe_time`` legitimately differ run to run; everything
    else is a pure function of (config, program index).
    """
    doc = record.to_json()
    doc.pop("gen_time")
    doc.pop("exe_time")
    return doc


def campaign_document(
    scenario: str, config: CampaignConfig, result: CampaignResult
) -> Dict:
    """The canonical deterministic document of one campaign result.

    Two runs of the same scenario — one-shot CLI, orchestrator, daemon, at
    any worker count — must serialize this document to identical bytes.
    """
    return {
        "scenario": scenario,
        "campaign": config.name,
        "seed": config.seed,
        "counters": result.stats.deterministic_counters(),
        "records": [deterministic_record(r) for r in result.records],
        "witnesses": [w.to_json() for w in result.witnesses],
        "ledger": result.ledger,
    }


def document_bytes(doc: Dict) -> bytes:
    """Canonical serialization (sorted keys, stable separators)."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "job"


class Orchestrator:
    """Drains a :class:`JobQueue` through the parallel campaign runner."""

    def __init__(
        self,
        queue: JobQueue,
        config: Optional[OrchestratorConfig] = None,
        out: Optional[TextIO] = None,
    ):
        self.queue = queue
        self.config = config or OrchestratorConfig()
        self.out = out if out is not None else sys.stderr
        self._stop = threading.Event()
        self._worker = self.config.worker_name or f"pid-{os.getpid()}"

    # -- lifecycle ------------------------------------------------------------

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def stop(self) -> None:
        """Ask the drain loop to exit after the current job."""
        self._stop.set()

    def recover(self) -> int:
        """Requeue jobs a dead orchestrator left ``running`` (startup)."""
        return self.queue.requeue_running("requeued by startup recovery")

    def install_signal_handlers(self) -> Dict[int, object]:
        """Foreground mode: SIGTERM/SIGINT requeue the in-flight job.

        The handler raises :class:`ShutdownRequested` in the main thread;
        :meth:`run_job` catches it, requeues, and re-raises so the drain
        loop stops.  Only callable from the main thread (the daemon stops
        its background orchestrator via :meth:`stop` instead).

        Returns the handlers that were displaced, keyed by signal number,
        so an embedding process (``run_all`` inside a larger program or a
        test runner) can restore them once the batch is done — a leaked
        raising handler would otherwise be inherited by every process
        forked later, where it masks the default terminate-on-SIGTERM.
        """

        def handle(signum, frame):
            self._stop.set()
            raise ShutdownRequested(signal.Signals(signum).name)

        return {
            signum: signal.signal(signum, handle)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }

    # -- execution ------------------------------------------------------------

    def run_job(self, job: Job) -> Tuple[Job, Optional[CampaignResult]]:
        """Execute one claimed job; returns the refreshed row + result."""
        try:
            spec = parse_spec(job.spec, source=f"job {job.id}")
            if spec.is_sweep:
                return self._run_sweep_job(job, spec)
            config = spec.build()
        except ServiceError as exc:
            self.queue.fail(job.id, f"invalid spec: {exc}")
            return self._refreshed(job), None

        artifact_dir = os.path.join(
            self.config.artifact_root, f"job-{job.id:04d}-{_slug(spec.name)}"
        )
        os.makedirs(artifact_dir, exist_ok=True)
        checkpoint = os.path.join(artifact_dir, "checkpoint.jsonl")
        events_path = os.path.join(artifact_dir, "events.jsonl")
        self.queue.set_paths(
            job.id, checkpoint_path=checkpoint, artifact_dir=artifact_dir
        )
        if self.config.dashboards:
            config.dashboard = os.path.join(artifact_dir, "dashboard.html")
        # Job labels on every progress line: the daemon's log interleaves
        # successive campaigns (and a tailing terminal can't tell two
        # scenarios of the same preset apart by campaign name alone).
        events = tee(
            progress_printer(self.out, prefix=f"[{spec.name}#{job.id}] "),
            jsonl_sink(events_path),
        )
        runner = ParallelRunner(
            RunnerConfig(
                workers=self.config.workers,
                shard_timeout=spec.shard_timeout,
                checkpoint_path=checkpoint,
                resume=True,
                health=config.monitor,
            ),
            events=events,
        )
        started = time.monotonic()
        try:
            with tspan(
                "service.job", job=job.id, scenario=spec.name
            ) as span:
                result = runner.run(config)
                span.set_attr(
                    "counterexamples", len(result.counterexamples())
                )
            if ttrace.enabled():
                # Keep the closed service.job span with its own job: the
                # next job's first shard_begin flushes the trace buffer,
                # so anything left here would be silently dropped.
                result.spans.extend(ttrace.drain())
        except ShutdownRequested:
            self.queue.requeue(job.id, "requeued by shutdown")
            raise
        except Exception as exc:  # fault-tolerant: one bad job, not the queue
            self.queue.fail(job.id, f"{type(exc).__name__}: {exc}")
            return self._refreshed(job), None
        duration = time.monotonic() - started
        summary = self._write_artifacts(
            spec, config, result, artifact_dir, duration
        )
        self._record_history(
            "service",
            spec,
            duration,
            stats=result.stats,
            solver=result.solver,
            spans=result.spans,
        )
        if not self.queue.finish(job.id, summary):
            # Cancelled (or otherwise moved) while running: the guarded
            # transition left that state alone; the result artifacts stay
            # on disk but the job does not become 'done'.
            return self._refreshed(job), None
        return self._refreshed(job), result

    def _run_sweep_job(
        self, job: Job, spec: ScenarioSpec
    ) -> Tuple[Job, Optional[CampaignResult]]:
        """Execute one ``hw_matrix`` sweep job.

        Same fault model and artifact conventions as a single-campaign
        job, with per-grid-point subdirectories: every point journals into
        the job's shared ``checkpoint.jsonl`` (keys embed the hardware
        digest, so a requeued sweep resumes exactly the points it
        finished), and each point's ``result.json`` is the canonical
        deterministic document the equivalent single-config job writes.
        """
        from repro.matrix import (
            report_bytes,
            run_sweep,
            sweep_report_doc,
            write_sweep_artifacts,
        )

        try:
            sweep = spec.build_sweep()
        except ServiceError as exc:
            self.queue.fail(job.id, f"invalid spec: {exc}")
            return self._refreshed(job), None
        artifact_dir = os.path.join(
            self.config.artifact_root, f"job-{job.id:04d}-{_slug(spec.name)}"
        )
        os.makedirs(artifact_dir, exist_ok=True)
        checkpoint = os.path.join(artifact_dir, "checkpoint.jsonl")
        events_path = os.path.join(artifact_dir, "events.jsonl")
        self.queue.set_paths(
            job.id, checkpoint_path=checkpoint, artifact_dir=artifact_dir
        )
        runner_config = RunnerConfig(
            workers=self.config.workers,
            shard_timeout=spec.shard_timeout,
            checkpoint_path=checkpoint,
            resume=True,
            health=spec.monitor,
        )

        def events_factory(index: int, total: int, point):
            return tee(
                progress_printer(
                    self.out,
                    prefix=(
                        f"[{spec.name}#{job.id} "
                        f"config {index}/{total} {point.name}] "
                    ),
                ),
                jsonl_sink(events_path),
            )

        started = time.monotonic()
        try:
            with tspan(
                "service.job", job=job.id, scenario=spec.name, sweep=True
            ):
                result = run_sweep(
                    sweep,
                    runner_config,
                    out=self.out,
                    events_factory=events_factory,
                )
        except ShutdownRequested:
            self.queue.requeue(job.id, "requeued by shutdown")
            raise
        except Exception as exc:  # fault-tolerant: one bad job, not the queue
            self.queue.fail(job.id, f"{type(exc).__name__}: {exc}")
            return self._refreshed(job), None
        artifacts = write_sweep_artifacts(
            result, artifact_dir, dashboard=self.config.dashboards
        )
        artifacts["checkpoint"] = checkpoint
        artifacts["events"] = events_path
        doc = sweep_report_doc(result)
        print(doc["verdict"]["summary"], file=self.out)
        summary = {
            "scenario": spec.name,
            "sweep": True,
            "experiment": spec.experiment,
            "grid_size": doc["grid_size"],
            "verdict": doc["verdict"]["summary"],
            "sound_configs": doc["verdict"]["sound_configs"],
            "unsound_configs": doc["verdict"]["unsound_configs"],
            "report_sha256": hashlib.sha256(report_bytes(doc)).hexdigest(),
            "duration": time.monotonic() - started,
            "artifacts": artifacts,
        }
        with open(
            os.path.join(artifact_dir, "summary.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(summary, handle, sort_keys=True, indent=2)
            handle.write("\n")
        self._record_history(
            "service-sweep", spec, summary["duration"], stats=None
        )
        if not self.queue.finish(job.id, summary):
            return self._refreshed(job), None
        return self._refreshed(job), None

    def _record_history(
        self,
        kind: str,
        spec: ScenarioSpec,
        duration: float,
        stats=None,
        solver=None,
        spans=None,
    ) -> None:
        """Append the finished job to the cross-run history store.

        History is observability, never semantics: any failure to record
        is reported and swallowed — it must not fail the job.
        """
        if not self.config.history:
            return
        path = self.config.history_path or os.path.join(
            self.config.artifact_root, "history.sqlite"
        )
        try:
            from repro.history import (
                HistoryStore,
                run_summary,
                scenario_digest,
            )

            store = HistoryStore(path)
            try:
                store.record(
                    run_summary(
                        kind,
                        spec.name,
                        wall_seconds=duration,
                        digest=scenario_digest(spec.to_doc()),
                        stats=stats,
                        solver=solver,
                        spans=spans,
                    )
                )
            finally:
                store.close()
        except Exception as exc:  # pragma: no cover - defensive
            print(
                f"warning: history store {path} not updated: {exc}",
                file=self.out,
            )

    def _refreshed(self, job: Job) -> Job:
        refreshed = self.queue.job(job.id)
        return refreshed if refreshed is not None else job

    def _write_artifacts(
        self,
        spec: ScenarioSpec,
        config: CampaignConfig,
        result: CampaignResult,
        artifact_dir: str,
        duration: float,
    ) -> Dict:
        """Write result/summary/ledger files; returns the queue summary."""
        doc = campaign_document(spec.name, config, result)
        payload = document_bytes(doc)
        result_path = os.path.join(artifact_dir, "result.json")
        with open(result_path, "wb") as handle:
            handle.write(payload)
        artifacts = {"result": result_path}
        if result.ledger is not None:
            from repro.monitor.ledger import write_ledger_file

            ledger_path = os.path.join(artifact_dir, "ledger.json")
            write_ledger_file(ledger_path, {config.name: result.ledger})
            artifacts["ledger"] = ledger_path
        if config.dashboard:
            artifacts["dashboard"] = config.dashboard
        artifacts["checkpoint"] = os.path.join(
            artifact_dir, "checkpoint.jsonl"
        )
        artifacts["events"] = os.path.join(artifact_dir, "events.jsonl")
        summary = {
            "scenario": spec.name,
            "campaign": config.name,
            "counters": result.stats.deterministic_counters(),
            "result_sha256": hashlib.sha256(payload).hexdigest(),
            "duration": duration,
            "artifacts": artifacts,
        }
        with open(
            os.path.join(artifact_dir, "summary.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(summary, handle, sort_keys=True, indent=2)
            handle.write("\n")
        return summary

    def drain(self) -> List[Tuple[Job, Optional[CampaignResult]]]:
        """Run claimed jobs until the queue is empty or a stop is requested."""
        finished: List[Tuple[Job, Optional[CampaignResult]]] = []
        while not self._stop.is_set():
            job = self.queue.claim(self._worker)
            if job is None:
                break
            finished.append(self.run_job(job))
        return finished

    def serve_forever(self) -> None:
        """The daemon's drain loop: poll, drain, sleep, until stopped."""
        while not self._stop.is_set():
            self.drain()
            self._stop.wait(self.config.poll_interval)


def run_all(
    specs: Sequence[ScenarioSpec],
    config: Optional[OrchestratorConfig] = None,
    queue: Optional[JobQueue] = None,
    out: Optional[TextIO] = None,
    handle_signals: bool = False,
) -> List[Tuple[Job, Optional[CampaignResult]]]:
    """Daemonless batch execution: submit every spec, drain, return jobs.

    The ephemeral queue preserves the daemon path's semantics — same
    priority ordering, same state machine, same artifact layout — so
    ``run-all`` over a directory produces byte-identical ``result.json``
    files to daemon submission of the same specs.  Job ids (and therefore
    artifact directories) are assigned in sorted-filename submission
    order, so an interrupted ``run-all`` rerun resumes each job from its
    checkpoint journal.
    """
    config = config or OrchestratorConfig()
    own_queue = queue is None
    if queue is None:
        queue = JobQueue(":memory:")
    orchestrator = Orchestrator(queue, config, out=out)
    displaced: Dict[int, object] = {}
    if handle_signals:
        displaced = orchestrator.install_signal_handlers()
    try:
        for spec in specs:
            queue.submit(spec.to_doc())
        try:
            return orchestrator.drain()
        except ShutdownRequested:
            return []
    finally:
        for signum, handler in displaced.items():
            signal.signal(signum, handler)
        if own_queue:
            queue.close()
