"""Campaign-as-a-service: declarative scenarios behind a persistent queue.

The multi-tenant entry point over the existing runner/telemetry/triage/
monitor layers: campaigns are described as data, queued, and executed by
an orchestrator — interactively (``repro-scamv run-all``) or by a
long-lived daemon with a local JSON-over-HTTP API (``repro-scamv
serve`` + ``submit``/``status``/``results``/``cancel``).

Layers:

* :mod:`repro.service.spec`         — scenario documents (TOML/JSON) + schema
* :mod:`repro.service.queue`        — SQLite-backed persistent job queue
* :mod:`repro.service.orchestrator` — queue drain over the process pool
* :mod:`repro.service.api`          — route dispatch (HTTP-independent)
* :mod:`repro.service.daemon`       — the long-lived HTTP service
* :mod:`repro.service.client`       — JSON client for the CLI verbs

Invariant: the queue is orchestration, never semantics.  A scenario's
result is bit-identical to the equivalent one-shot ``repro-scamv
validate`` invocation, for the same seed, at any worker count, on every
execution path (one-shot, ``run-all``, daemon).
"""

from repro.service.api import API_VERSION, ServiceApi
from repro.service.client import DEFAULT_URL, ServiceClient
from repro.service.daemon import DEFAULT_HOST, DEFAULT_PORT, ServiceDaemon
from repro.service.orchestrator import (
    Orchestrator,
    OrchestratorConfig,
    ShutdownRequested,
    campaign_document,
    deterministic_record,
    document_bytes,
    run_all,
)
from repro.service.queue import (
    ACTIVE_STATES,
    JOB_STATES,
    Job,
    JobQueue,
)
from repro.service.spec import (
    SPEC_VERSION,
    ScenarioSpec,
    load_corpus,
    load_spec,
    parse_spec,
)

__all__ = [
    "ACTIVE_STATES",
    "API_VERSION",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_URL",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "Orchestrator",
    "OrchestratorConfig",
    "SPEC_VERSION",
    "ScenarioSpec",
    "ServiceApi",
    "ServiceClient",
    "ServiceDaemon",
    "ShutdownRequested",
    "campaign_document",
    "deterministic_record",
    "document_bytes",
    "load_corpus",
    "load_spec",
    "parse_spec",
    "run_all",
]
