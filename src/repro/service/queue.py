"""The persistent job queue: scenarios waiting to run, as SQLite rows.

One queue file is the shared state between every service entry point —
the daemon's HTTP handlers submit and cancel, the orchestrator claims and
finishes, a crash-recovering restart requeues.  The design keeps SQLite
honest under that concurrency:

* WAL journal mode (file-backed queues) so status readers never block the
  orchestrator's writes, plus a busy timeout for writer collisions.
* Every state transition is a single guarded ``UPDATE ... WHERE state =
  ...`` statement, so races resolve inside SQLite: two orchestrators
  cannot claim the same job, and finishing a job that was cancelled
  mid-run leaves it cancelled.
* Claiming uses ``BEGIN IMMEDIATE`` so pick-and-mark is atomic across
  processes.

Job lifecycle::

    queued --claim--> running --finish--> done
      |                  |      \\--fail--> failed
      |                  +--requeue-------> queued   (crash / SIGTERM)
      +------------cancel (also from running)-----> cancelled
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ServiceError

#: Queue schema generation (``user_version`` pragma of the queue file).
QUEUE_SCHEMA_VERSION = 1

#: Every legal job state, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can still leave.
ACTIVE_STATES = ("queued", "running")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    spec TEXT NOT NULL,
    priority INTEGER NOT NULL DEFAULT 0,
    state TEXT NOT NULL DEFAULT 'queued',
    submitted_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    worker TEXT,
    error TEXT,
    checkpoint_path TEXT,
    artifact_dir TEXT,
    result TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state
    ON jobs(state, priority DESC, id ASC);
"""


@dataclass(frozen=True)
class Job:
    """One queue row, decoded."""

    id: int
    name: str
    spec: Dict
    priority: int
    state: str
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    worker: Optional[str] = None
    error: Optional[str] = None
    checkpoint_path: Optional[str] = None
    artifact_dir: Optional[str] = None
    result: Optional[Dict] = None

    def to_json(self) -> Dict:
        """The job document the status API serves."""
        return {
            "id": self.id,
            "name": self.name,
            "spec": self.spec,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
            "checkpoint_path": self.checkpoint_path,
            "artifact_dir": self.artifact_dir,
            "result": self.result,
        }


_COLUMNS = (
    "id, name, spec, priority, state, submitted_at, started_at, "
    "finished_at, attempts, worker, error, checkpoint_path, artifact_dir, "
    "result"
)


def _decode(row) -> Job:
    (
        job_id, name, spec, priority, state, submitted_at, started_at,
        finished_at, attempts, worker, error, checkpoint_path, artifact_dir,
        result,
    ) = row
    return Job(
        id=int(job_id),
        name=name,
        spec=json.loads(spec),
        priority=int(priority),
        state=state,
        submitted_at=submitted_at,
        started_at=started_at,
        finished_at=finished_at,
        attempts=int(attempts),
        worker=worker,
        error=error,
        checkpoint_path=checkpoint_path,
        artifact_dir=artifact_dir,
        result=json.loads(result) if result else None,
    )


class JobQueue:
    """The SQLite-backed persistent queue.

    One connection guarded by a re-entrant lock serves every thread of
    this process (the daemon's HTTP handler threads and the orchestrator
    thread share an instance); other *processes* open their own
    :class:`JobQueue` on the same path and coordinate through WAL and the
    guarded-UPDATE state machine.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.RLock()
        # Autocommit (isolation_level=None): the state machine manages its
        # own transactions — claim() issues an explicit BEGIN IMMEDIATE,
        # and every other write is a single self-committing statement.
        self._conn = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        stored = int(
            self._conn.execute("PRAGMA user_version").fetchone()[0]
        )
        if stored > QUEUE_SCHEMA_VERSION:
            self._conn.close()
            raise ServiceError(
                f"queue {path!r} has schema version {stored}; "
                f"this build reads up to {QUEUE_SCHEMA_VERSION}"
            )
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                f"PRAGMA user_version = {QUEUE_SCHEMA_VERSION}"
            )
            self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- submission and queries ----------------------------------------------

    def submit(self, spec_doc: Dict, priority: Optional[int] = None) -> Job:
        """Validate and enqueue one scenario document.

        Validation happens at submit time (the same
        :func:`~repro.service.spec.parse_spec` path the loader uses), so a
        malformed document is rejected at the API boundary rather than
        failing inside a worker hours later.
        """
        from repro.service.spec import parse_spec

        spec = parse_spec(spec_doc)
        if priority is None:
            priority = spec.priority
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO jobs (name, spec, priority, state, submitted_at)"
                " VALUES (?, ?, ?, 'queued', ?)",
                (spec.name, spec.to_json(), int(priority), time.time()),
            )
            self._conn.commit()
        job = self.job(int(cur.lastrowid))
        assert job is not None
        return job

    def job(self, job_id: int) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return _decode(row) if row is not None else None

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        """All jobs, newest-submitted last; optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r} (known: {', '.join(JOB_STATES)})"
            )
        query = f"SELECT {_COLUMNS} FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY id ASC"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [_decode(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """``state -> job count`` with every state present (0 included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in JOB_STATES}
        out.update({state: int(count) for state, count in rows})
        return out

    # -- state machine --------------------------------------------------------

    def claim(self, worker: str) -> Optional[Job]:
        """Atomically move the best queued job to ``running``.

        Ordering: highest priority first, FIFO (smallest id) within a
        priority.  ``BEGIN IMMEDIATE`` takes the write lock before the
        SELECT, so two orchestrator processes polling the same file can
        never claim the same job.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT id FROM jobs WHERE state = 'queued'"
                    " ORDER BY priority DESC, id ASC LIMIT 1"
                ).fetchone()
                if row is None:
                    self._conn.execute("ROLLBACK")
                    return None
                job_id = int(row[0])
                self._conn.execute(
                    "UPDATE jobs SET state = 'running', started_at = ?,"
                    " attempts = attempts + 1, worker = ?, error = NULL"
                    " WHERE id = ? AND state = 'queued'",
                    (time.time(), worker, job_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return self.job(job_id)

    def set_paths(
        self,
        job_id: int,
        checkpoint_path: Optional[str] = None,
        artifact_dir: Optional[str] = None,
    ) -> None:
        """Record where a running job checkpoints and writes artifacts."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET checkpoint_path = COALESCE(?, checkpoint_path),"
                " artifact_dir = COALESCE(?, artifact_dir) WHERE id = ?",
                (checkpoint_path, artifact_dir, job_id),
            )
            self._conn.commit()

    def finish(self, job_id: int, result: Dict) -> bool:
        """``running -> done`` with the result summary document.

        Returns False when the job was not running anymore — e.g. it was
        cancelled mid-run; the guarded UPDATE then leaves that state
        untouched and the caller discards the result.
        """
        return self._transition(
            job_id,
            "UPDATE jobs SET state = 'done', finished_at = ?, result = ?"
            " WHERE id = ? AND state = 'running'",
            (time.time(), json.dumps(result, sort_keys=True), job_id),
        )

    def fail(self, job_id: int, error: str) -> bool:
        """``running -> failed`` with the error text."""
        return self._transition(
            job_id,
            "UPDATE jobs SET state = 'failed', finished_at = ?, error = ?"
            " WHERE id = ? AND state = 'running'",
            (time.time(), error, job_id),
        )

    def requeue(self, job_id: int, reason: str = "") -> bool:
        """``running -> queued`` (graceful shutdown / crash recovery).

        The attempt counter keeps its value — requeueing is not a retry
        reset — and the checkpoint path survives, so the next claim
        resumes from the journal instead of starting over.
        """
        return self._transition(
            job_id,
            "UPDATE jobs SET state = 'queued', started_at = NULL,"
            " worker = NULL, error = ? WHERE id = ? AND state = 'running'",
            (reason or None, job_id),
        )

    def requeue_running(self, reason: str = "requeued") -> int:
        """Requeue every ``running`` job; returns how many moved.

        Startup crash recovery: jobs left ``running`` by a dead
        orchestrator would otherwise be stuck forever.
        """
        moved = 0
        for job in self.jobs("running"):
            if self.requeue(job.id, reason):
                moved += 1
        return moved

    def cancel(self, job_id: int) -> Optional[Job]:
        """``queued|running -> cancelled``; returns the job, or None if
        unknown.  Cancelling a finished job is a no-op (state preserved).

        A running job flips to ``cancelled`` immediately; the orchestrator
        observes that when it tries to finish (guarded UPDATE misses) and
        discards the result.
        """
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ?"
                " WHERE id = ? AND state IN ('queued', 'running')",
                (time.time(), job_id),
            )
            self._conn.commit()
        return self.job(job_id)

    def _transition(self, job_id: int, sql: str, params: tuple) -> bool:
        with self._lock:
            cur = self._conn.execute(sql, params)
            self._conn.commit()
        return cur.rowcount > 0
