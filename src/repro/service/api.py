"""The service API: routes and request handling, independent of HTTP.

:class:`ServiceApi` maps (method, path, body) requests onto the job queue
and returns ``(status code, JSON document)`` pairs.  The daemon's HTTP
handler (:mod:`repro.service.daemon`) is a thin byte shuffler around this
class, and the client (:mod:`repro.service.client`) speaks the same
routes — keeping the protocol in one place and unit-testable without
opening sockets.

Routes (all JSON)::

    GET  /api/v1/health               liveness + queue counts
    GET  /healthz                     alias of /api/v1/health, for probes
    GET  /metrics                     Prometheus text exposition (text/plain;
                                      served by the daemon, not this router)
    GET  /api/v1/jobs                 every job (newest last) + counts
    POST /api/v1/jobs                 submit {"spec": {...}, "priority"?: n}
    GET  /api/v1/jobs/<id>            one job document
    GET  /api/v1/jobs/<id>/result     result summary + canonical document
    POST /api/v1/jobs/<id>/cancel     cancel a queued/running job

Errors are ``{"error": "..."}`` with 400 (bad request/spec), 404 (no such
job or route), or 409 (result requested before the job is done).
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError, SpecError
from repro.service.queue import JobQueue

#: Protocol generation, reported by /health and checked by the client.
API_VERSION = 1

#: Common route prefix.
API_PREFIX = "/api/v1"

_JOB_PATH = re.compile(r"^/api/v1/jobs/(\d+)(/result|/cancel)?$")

#: ``(status, doc)`` — what every handler returns.
Response = Tuple[int, Dict]


class ServiceApi:
    """Request dispatch over one job queue."""

    def __init__(self, queue: JobQueue, workers: int = 1):
        self.queue = queue
        self.workers = workers
        self.started_at = time.time()

    # -- dispatch -------------------------------------------------------------

    def handle(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Response:
        """Route one request; never raises for client errors."""
        try:
            return self._route(method, path, body)
        except SpecError as exc:
            return 400, {"error": str(exc)}
        except ServiceError as exc:
            return 400, {"error": str(exc)}

    def _route(
        self, method: str, path: str, body: Optional[Dict]
    ) -> Response:
        path = path.rstrip("/") or "/"
        if (
            path in (f"{API_PREFIX}/health", "/healthz")
            and method == "GET"
        ):
            return self.health()
        if path == f"{API_PREFIX}/jobs":
            if method == "GET":
                return self.list_jobs()
            if method == "POST":
                return self.submit(body)
            return 405, {"error": f"method {method} not allowed on {path}"}
        match = _JOB_PATH.match(path)
        if match is not None:
            job_id = int(match.group(1))
            tail = match.group(2)
            if tail is None and method == "GET":
                return self.status(job_id)
            if tail == "/result" and method == "GET":
                return self.result(job_id)
            if tail == "/cancel" and method == "POST":
                return self.cancel(job_id)
            return 405, {"error": f"method {method} not allowed on {path}"}
        return 404, {"error": f"no such route: {method} {path}"}

    # -- handlers -------------------------------------------------------------

    def health(self) -> Response:
        return 200, {
            "status": "ok",
            "api_version": API_VERSION,
            "uptime": time.time() - self.started_at,
            "workers": self.workers,
            "queue": self.queue.path,
            "counts": self.queue.counts(),
        }

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Service gauges in the telemetry snapshot shape, so the standard
        Prometheus renderer (:func:`repro.telemetry.export.render_prometheus`)
        serves ``GET /metrics``."""
        counts = self.queue.counts()
        snapshot: Dict[str, Dict[str, object]] = {
            "scamv_service_uptime_seconds": {
                "type": "gauge",
                "value": time.time() - self.started_at,
            },
            "scamv_service_workers": {
                "type": "gauge",
                "value": self.workers,
            },
            "scamv_service_queue_depth": {
                "type": "gauge",
                "value": counts.get("queued", 0),
            },
        }
        for state, count in sorted(counts.items()):
            snapshot[f"scamv_service_jobs_{state}"] = {
                "type": "gauge",
                "value": count,
            }
        return snapshot

    def metrics_text(self) -> str:
        """The ``/metrics`` payload (Prometheus text exposition 0.0.4)."""
        from repro.telemetry.export import render_prometheus

        return render_prometheus(self.metrics_snapshot())

    def list_jobs(self) -> Response:
        return 200, {
            "jobs": [job.to_json() for job in self.queue.jobs()],
            "counts": self.queue.counts(),
        }

    def submit(self, body: Optional[Dict]) -> Response:
        if not isinstance(body, dict) or "spec" not in body:
            return 400, {"error": 'submit body must be {"spec": {...}}'}
        priority = body.get("priority")
        if priority is not None and (
            not isinstance(priority, int) or isinstance(priority, bool)
        ):
            return 400, {"error": "priority must be an integer"}
        job = self.queue.submit(body["spec"], priority=priority)
        return 201, job.to_json()

    def status(self, job_id: int) -> Response:
        job = self.queue.job(job_id)
        if job is None:
            return 404, {"error": f"no such job: {job_id}"}
        return 200, job.to_json()

    def result(self, job_id: int) -> Response:
        job = self.queue.job(job_id)
        if job is None:
            return 404, {"error": f"no such job: {job_id}"}
        if job.state != "done":
            return 409, {
                "error": f"job {job_id} is {job.state}, not done",
                "state": job.state,
            }
        doc = None
        summary = job.result or {}
        result_path = (summary.get("artifacts") or {}).get("result")
        if result_path and os.path.exists(result_path):
            with open(result_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        return 200, {"job": job.to_json(), "summary": summary, "document": doc}

    def cancel(self, job_id: int) -> Response:
        job = self.queue.cancel(job_id)
        if job is None:
            return 404, {"error": f"no such job: {job_id}"}
        return 200, job.to_json()
