"""The long-lived campaign service daemon: HTTP front, orchestrator back.

``repro-scamv serve`` runs one process with two halves sharing a
:class:`~repro.service.queue.JobQueue`:

* a threading HTTP server exposing the JSON API
  (:class:`~repro.service.api.ServiceApi`) for submit/status/results/
  cancel/health — stdlib :mod:`http.server` only, bound to localhost by
  default;
* a background orchestrator thread draining the queue through the
  campaign runner (:mod:`repro.service.orchestrator`).

Startup requeues jobs a previous daemon left ``running`` (crash
recovery).  SIGTERM/SIGINT shut down gracefully: the HTTP server stops
accepting, the orchestrator finishes nothing new, and any still-running
job is requeued — its checkpoint journal preserves the completed shards,
so the next daemon resumes it instead of restarting.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, TextIO

from repro.service.api import ServiceApi
from repro.service.orchestrator import Orchestrator, OrchestratorConfig
from repro.service.queue import JobQueue

#: Default bind address of the local service.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

_MAX_BODY = 4 * 1024 * 1024  # a spec document is tiny; 4 MiB is generous


class _Handler(BaseHTTPRequestHandler):
    """Byte shuffling around :class:`ServiceApi` (which owns the logic)."""

    server_version = "repro-scamv-service/1"
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, doc) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _handle(self, method: str) -> None:
        try:
            body = self._body() if method == "POST" else None
        except (ValueError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._respond(400, {"error": f"bad request body: {exc}"})
            return
        status, doc = self.server.api.handle(method, self.path, body)
        self._respond(status, doc)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") == "/metrics":
            # Prometheus scrapes expect text exposition, not JSON — the
            # one route that bypasses the JSON responder.
            payload = self.server.api.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def log_message(self, format: str, *args) -> None:
        # Request logging goes through the daemon's stream, not stderr
        # unconditionally; the orchestrator's progress lines are the
        # interesting output.
        if self.server.daemon_log is not None:
            self.server.daemon_log.write(
                f"[http] {self.address_string()} {format % args}\n"
            )
            self.server.daemon_log.flush()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    api: ServiceApi
    daemon_log: Optional[TextIO] = None


class ServiceDaemon:
    """One daemon instance: queue + orchestrator thread + HTTP server."""

    def __init__(
        self,
        queue_path: str,
        config: Optional[OrchestratorConfig] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        out: Optional[TextIO] = None,
        log_requests: bool = False,
    ):
        self.queue = JobQueue(queue_path)
        self.config = config or OrchestratorConfig()
        self.out = out if out is not None else sys.stderr
        self.orchestrator = Orchestrator(self.queue, self.config, out=self.out)
        self.api = ServiceApi(self.queue, workers=self.config.workers)
        self._server = _Server((host, port), _Handler)
        self._server.api = self.api
        self._server.daemon_log = self.out if log_requests else None
        self._thread: Optional[threading.Thread] = None
        self._http_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start orchestrator and HTTP threads (non-blocking; for tests
        and for :meth:`serve`, which then just waits)."""
        recovered = self.orchestrator.recover()
        if recovered:
            print(
                f"recovered {recovered} interrupted job(s) back to queued",
                file=self.out,
            )
        self._thread = threading.Thread(
            target=self.orchestrator.serve_forever,
            name="scamv-orchestrator",
            daemon=True,
        )
        self._thread.start()
        self._http_thread = threading.Thread(
            target=self._server.serve_forever,
            name="scamv-http",
            daemon=True,
        )
        self._http_thread.start()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: close the API, stop the loop, requeue leftovers."""
        self._server.shutdown()
        self._server.server_close()
        self.orchestrator.stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        # The process is exiting: anything still marked running cannot
        # make further progress, so hand it back to the queue.  Completed
        # shards are in the job's checkpoint journal; the next daemon
        # resumes from there.
        requeued = self.queue.requeue_running("requeued by daemon shutdown")
        if requeued:
            print(
                f"requeued {requeued} running job(s) for the next daemon",
                file=self.out,
            )
        self.queue.close()

    def serve(self) -> int:
        """Foreground daemon entry point (the ``serve`` CLI verb)."""
        stop = threading.Event()

        def handle(signum, frame):
            stop.set()

        signal.signal(signal.SIGTERM, handle)
        signal.signal(signal.SIGINT, handle)
        self.start()
        print(
            f"repro-scamv service listening on {self.address} "
            f"(queue {self.queue.path}, {self.config.workers} worker(s), "
            f"artifacts under {self.config.artifact_root})",
            file=self.out,
        )
        while not stop.is_set():
            stop.wait(0.2)
        print("shutting down...", file=self.out)
        self.shutdown()
        return 0
