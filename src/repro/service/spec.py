"""Declarative scenario specifications: campaigns as data.

A *scenario* is one validation campaign described as a flat TOML or JSON
document instead of a CLI invocation — the corpus-shaped entry point the
paper's methodology implies (one column per (model, refinement, template,
platform) combination).  A spec names an experiment from the shared
registry (:mod:`repro.exps.registry`), a hardware profile from
:data:`repro.hw.profiles.PROFILES`, the campaign budgets, the seed, and
the triage/monitor switches::

    name = "mct-a-refined"
    description = "Table 1: Mct on Template A with Mspec refinement"
    experiment = "mct-a"
    refined = true
    hw_profile = "cortex-a53"
    programs = 6
    tests = 6
    seed = 0
    priority = 10

Validation is strict: unknown keys are rejected (a typo like ``program``
must fail loudly, not silently run the default budget), types are
checked, and ``experiment``/``hw_profile`` must resolve against their
registries at load time.  :meth:`ScenarioSpec.build` produces exactly the
:class:`~repro.pipeline.config.CampaignConfig` the equivalent one-shot
``repro-scamv validate`` invocation would, so a spec carries no semantics
of its own — scheduling fields (``priority``, ``shard_timeout``) are
orchestration only.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields
from typing import Dict, List, Optional

from repro.errors import SpecError
from repro.exps.registry import build_experiment, experiment_names
from repro.hw.profiles import profile_names, resolve_profile
from repro.pipeline.config import CampaignConfig

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    _toml = None

#: Spec document version, embedded as ``spec_version`` when serialized.
SPEC_VERSION = 1

#: ``key -> (python type, default)``; a default of ``_REQUIRED`` means the
#: key must be present.  This table *is* the schema: validation walks it,
#: and anything outside it is an unknown key.
_REQUIRED = object()
_SCHEMA: Dict[str, tuple] = {
    "spec_version": (int, SPEC_VERSION),
    "name": (str, _REQUIRED),
    "description": (str, ""),
    "experiment": (str, _REQUIRED),
    "refined": (bool, False),
    "hw_profile": (str, "cortex-a53"),
    "hw_matrix": (str, ""),
    "programs": (int, 10),
    "tests": (int, 16),
    "seed": (int, 0),
    "priority": (int, 0),
    "triage": (bool, False),
    "monitor": (bool, True),
    "certify": (bool, False),
    "shard_timeout": (float, None),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario document."""

    name: str
    experiment: str
    description: str = ""
    refined: bool = False
    hw_profile: str = "cortex-a53"
    #: Differential-sweep axis spec (``repro.matrix``): non-empty turns the
    #: scenario into a sweep job over the grid, with ``hw_profile`` as the
    #: base configuration.  Empty (the default) runs a single campaign.
    hw_matrix: str = ""
    programs: int = 10
    tests: int = 16
    seed: int = 0
    priority: int = 0
    triage: bool = False
    monitor: bool = True
    certify: bool = False
    shard_timeout: Optional[float] = None

    def to_doc(self) -> Dict:
        """The canonical JSON-able document (round-trips via :func:`parse_spec`)."""
        doc: Dict = {"spec_version": SPEC_VERSION}
        for field in fields(self):
            doc[field.name] = getattr(self, field.name)
        return doc

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys, stable bytes)."""
        return json.dumps(self.to_doc(), sort_keys=True)

    def build(self) -> CampaignConfig:
        """The campaign this scenario runs — identical to the one-shot CLI's.

        The spec adds nothing to campaign semantics: it forwards the same
        preset-factory arguments ``repro-scamv validate`` would, then sets
        the same config switches the CLI flags set.
        """
        config = build_experiment(
            self.experiment,
            refined=self.refined,
            num_programs=self.programs,
            tests_per_program=self.tests,
            seed=self.seed,
            core=resolve_profile(self.hw_profile),
        )
        config.triage = self.triage
        config.monitor = self.monitor
        config.certify = self.certify
        return config

    @property
    def is_sweep(self) -> bool:
        """Whether this scenario is a differential sweep (``hw_matrix``)."""
        return bool(self.hw_matrix.strip())

    def build_sweep(self):
        """The :class:`~repro.matrix.runner.SweepConfig` of a sweep scenario.

        Mirrors :meth:`build`: the spec forwards exactly what the
        equivalent ``repro-scamv sweep`` invocation would, with
        ``hw_profile`` as the grid's base configuration.
        """
        from repro.matrix import SweepConfig, parse_axis_spec

        if not self.is_sweep:
            raise SpecError(
                f"scenario {self.name!r} has no hw_matrix axis spec"
            )
        return SweepConfig(
            experiment=self.experiment,
            axes=parse_axis_spec(self.hw_matrix),
            refined=self.refined,
            base_profile=self.hw_profile,
            programs=self.programs,
            tests=self.tests,
            seed=self.seed,
            monitor=self.monitor,
            triage=self.triage,
            scenario=self.name,
        )

    def describe(self) -> str:
        refined = "yes" if self.refined else "no"
        text = (
            f"{self.name}: experiment={self.experiment} refined={refined} "
            f"hw={self.hw_profile} programs={self.programs} "
            f"tests={self.tests} seed={self.seed} priority={self.priority}"
        )
        if self.is_sweep:
            text += f" hw_matrix={self.hw_matrix!r}"
        return text


def parse_spec(doc: Dict, source: str = "<doc>") -> ScenarioSpec:
    """Validate a raw document against the schema and build the spec."""
    if not isinstance(doc, dict):
        raise SpecError(f"{source}: spec must be a table/object, not {type(doc).__name__}")
    unknown = sorted(set(doc) - set(_SCHEMA))
    if unknown:
        raise SpecError(
            f"{source}: unknown key(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_SCHEMA))})"
        )
    values: Dict = {}
    for key, (kind, default) in _SCHEMA.items():
        if key not in doc:
            if default is _REQUIRED:
                raise SpecError(f"{source}: missing required key {key!r}")
            value = default
        else:
            value = doc[key]
            value = _check_type(source, key, kind, value, default)
        if key != "spec_version":
            values[key] = value
        elif value != SPEC_VERSION:
            raise SpecError(
                f"{source}: spec_version {value} unsupported "
                f"(this build reads version {SPEC_VERSION})"
            )
    spec = ScenarioSpec(**values)
    _check_registries(source, spec)
    return spec


def _check_type(source: str, key: str, kind, value, default):
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if kind is float and value is None and default is None:
        return None
    # bool is an int subclass; an int-typed key must still reject ``true``.
    if not isinstance(value, kind) or (
        kind is int and isinstance(value, bool)
    ):
        raise SpecError(
            f"{source}: key {key!r} must be {kind.__name__}, "
            f"got {value!r}"
        )
    if kind is int and key in ("programs", "tests") and value < 1:
        raise SpecError(f"{source}: key {key!r} must be >= 1, got {value}")
    if kind is float and value is not None and value <= 0:
        raise SpecError(f"{source}: key {key!r} must be > 0, got {value}")
    if kind is str and key == "name" and not value.strip():
        raise SpecError(f"{source}: key 'name' must be non-empty")
    return value


def _check_registries(source: str, spec: ScenarioSpec) -> None:
    if spec.experiment not in experiment_names():
        raise SpecError(
            f"{source}: unknown experiment {spec.experiment!r} "
            f"(known: {', '.join(experiment_names())})"
        )
    if spec.hw_profile not in profile_names():
        raise SpecError(
            f"{source}: unknown hw_profile {spec.hw_profile!r} "
            f"(known: {', '.join(profile_names())})"
        )
    if spec.is_sweep:
        from repro.errors import MatrixError
        from repro.matrix import parse_axis_spec

        try:
            parse_axis_spec(spec.hw_matrix)
        except MatrixError as exc:
            raise SpecError(f"{source}: invalid hw_matrix: {exc}") from exc


# -- file loading -------------------------------------------------------------


def load_spec(path: str) -> ScenarioSpec:
    """Load and validate one spec file (``.toml`` or ``.json``)."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec {path!r}: {exc}") from exc
    if path.endswith(".json"):
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    elif path.endswith(".toml"):
        doc = _parse_toml(path, raw)
    else:
        raise SpecError(
            f"{path}: unsupported spec extension (use .toml or .json)"
        )
    return parse_spec(doc, source=os.path.basename(path))


def _parse_toml(path: str, raw: bytes) -> Dict:
    if _toml is not None:
        try:
            return _toml.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, _toml.TOMLDecodeError) as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    return _parse_flat_toml(path, raw)


def _parse_flat_toml(path: str, raw: bytes) -> Dict:
    """Minimal ``key = value`` TOML subset for Pythons without tomllib.

    Scenario specs are flat tables of strings, numbers and booleans; that
    subset parses with a few lines and keeps Python 3.9 working without a
    third-party TOML dependency.
    """
    doc: Dict = {}
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "=" not in stripped:
            raise SpecError(f"{path}:{lineno}: expected 'key = value'")
        key, _, value = stripped.partition("=")
        key, value = key.strip(), value.strip()
        if value.startswith('"'):
            if not value.endswith('"') or len(value) < 2:
                raise SpecError(f"{path}:{lineno}: unterminated string")
            doc[key] = value[1:-1]
        elif value in ("true", "false"):
            doc[key] = value == "true"
        else:
            try:
                doc[key] = int(value)
            except ValueError:
                try:
                    doc[key] = float(value)
                except ValueError:
                    raise SpecError(
                        f"{path}:{lineno}: unsupported value {value!r}"
                    ) from None
    return doc


def load_corpus(directory: str) -> List[ScenarioSpec]:
    """Load every ``.toml``/``.json`` spec in a directory.

    Files load in sorted filename order (deterministic submission order for
    ``run-all``); duplicate scenario names across files are an error —
    names are the registry key jobs and artifacts are tracked under.
    """
    if not os.path.isdir(directory):
        raise SpecError(f"no such scenario directory: {directory!r}")
    names = sorted(
        entry
        for entry in os.listdir(directory)
        if entry.endswith((".toml", ".json"))
    )
    if not names:
        raise SpecError(f"directory {directory!r} holds no .toml/.json specs")
    specs: List[ScenarioSpec] = []
    seen: Dict[str, str] = {}
    for entry in names:
        spec = load_spec(os.path.join(directory, entry))
        if spec.name in seen:
            raise SpecError(
                f"duplicate scenario name {spec.name!r} "
                f"({seen[spec.name]} and {entry})"
            )
        seen[spec.name] = entry
        specs.append(spec)
    return specs
