"""Cross-run performance history: record, list, and compare runs.

The observatory's long axis: the telemetry layer answers "where did
*this* run spend its time"; this package answers "is that more than last
time".  :class:`HistoryStore` persists one stamped summary per run
(:func:`run_summary`), and :func:`compare_summaries` turns two of them
into a gating trend report (``repro-scamv history`` / ``trends``).
"""

from repro.history.store import HistoryStore
from repro.history.summary import (
    phase_self_times,
    run_summary,
    scenario_digest,
)
from repro.history.trends import (
    DEFAULT_FLOOR_SECONDS,
    DEFAULT_RATE_DROP,
    DEFAULT_TOLERANCE,
    MetricDelta,
    TrendReport,
    compare_summaries,
)

__all__ = [
    "HistoryStore",
    "run_summary",
    "scenario_digest",
    "phase_self_times",
    "compare_summaries",
    "MetricDelta",
    "TrendReport",
    "DEFAULT_TOLERANCE",
    "DEFAULT_FLOOR_SECONDS",
    "DEFAULT_RATE_DROP",
]
