"""Trend comparison between two recorded run summaries.

``repro-scamv trends`` compares a run against a baseline metric by
metric and exits non-zero when anything regressed beyond tolerance —
the same gate the benchmark regression watch applies in CI.

Regression rules:

* **Time metrics** (wall clock, solver seconds, per-phase self times)
  regress when the current value exceeds the baseline by more than the
  relative ``tolerance`` *and* more than the absolute ``floor`` — the
  floor keeps tiny runs (milliseconds of solver time) from tripping the
  gate on scheduler noise.
* **Cache hit rates** regress on an absolute drop larger than
  ``rate_drop`` (relative tolerance is meaningless near 0%/100%).
* **Deterministic counters** must match exactly *when both runs carry
  the same scenario digest* — a mismatch is not a performance problem
  but a determinism break, which is worse, and gates too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_FLOOR_SECONDS",
    "DEFAULT_RATE_DROP",
    "MetricDelta",
    "TrendReport",
    "compare_summaries",
]

DEFAULT_TOLERANCE = 0.25
DEFAULT_FLOOR_SECONDS = 0.05
DEFAULT_RATE_DROP = 0.10


@dataclass
class MetricDelta:
    """One compared metric."""

    name: str
    base: float
    current: float
    regressed: bool = False
    note: str = ""

    @property
    def delta(self) -> float:
        return self.current - self.base

    @property
    def pct(self) -> Optional[float]:
        if self.base == 0:
            return None
        return 100.0 * (self.current - self.base) / self.base


@dataclass
class TrendReport:
    """Everything ``trends`` prints, plus the gate verdict."""

    base_label: str
    current_label: str
    deltas: List[MetricDelta] = field(default_factory=list)
    #: Non-numeric findings (counter mismatches), all of which gate.
    violations: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.violations

    def render(self) -> str:
        lines = [
            f"trends: {self.current_label} vs baseline {self.base_label}"
        ]
        if not self.deltas and not self.violations:
            lines.append("  no comparable metrics recorded on both runs")
            return "\n".join(lines)
        width = max((len(d.name) for d in self.deltas), default=0)
        for delta in self.deltas:
            pct = delta.pct
            pct_text = f"{pct:+.1f}%" if pct is not None else "n/a"
            marker = "  REGRESSION" if delta.regressed else ""
            lines.append(
                f"  {delta.name:<{width}}  {delta.base:>10.4f} -> "
                f"{delta.current:>10.4f}  ({pct_text}){marker}"
            )
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        lines.append(
            "verdict: "
            + (
                "ok"
                if self.ok
                else f"{len(self.regressions) + len(self.violations)} "
                "regression(s)"
            )
        )
        return "\n".join(lines)


def _time_metrics(summary: Dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    wall = summary.get("wall_seconds")
    if isinstance(wall, (int, float)):
        out["wall_seconds"] = float(wall)
    solver = summary.get("solver_seconds")
    if isinstance(solver, (int, float)):
        out["solver_seconds"] = float(solver)
    for phase, seconds in (summary.get("phase_self_seconds") or {}).items():
        if isinstance(seconds, (int, float)):
            out[f"phase.{phase}.self_seconds"] = float(seconds)
    return out


def compare_summaries(
    base: Dict,
    current: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
    floor: float = DEFAULT_FLOOR_SECONDS,
    rate_drop: float = DEFAULT_RATE_DROP,
    base_label: str = "base",
    current_label: str = "current",
) -> TrendReport:
    """Compare two summary documents (see :mod:`repro.history.summary`)."""
    report = TrendReport(base_label=base_label, current_label=current_label)

    base_times = _time_metrics(base)
    current_times = _time_metrics(current)
    for name in sorted(set(base_times) & set(current_times)):
        b, c = base_times[name], current_times[name]
        regressed = c > b * (1.0 + tolerance) and (c - b) > floor
        report.deltas.append(
            MetricDelta(name=name, base=b, current=c, regressed=regressed)
        )

    base_rates = base.get("cache_hit_rates") or {}
    current_rates = current.get("cache_hit_rates") or {}
    for name in sorted(set(base_rates) & set(current_rates)):
        b, c = float(base_rates[name]), float(current_rates[name])
        report.deltas.append(
            MetricDelta(
                name=f"cache.{name}.hit_rate",
                base=b,
                current=c,
                regressed=(b - c) > rate_drop,
            )
        )

    if base.get("digest") and base.get("digest") == current.get("digest"):
        base_counters = base.get("counters") or {}
        current_counters = current.get("counters") or {}
        for name in sorted(set(base_counters) | set(current_counters)):
            b = base_counters.get(name)
            c = current_counters.get(name)
            if b != c:
                report.violations.append(
                    f"counter {name} changed {b} -> {c} for an identical "
                    "scenario digest (determinism break)"
                )
    return report
