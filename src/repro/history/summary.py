"""Building the stamped run-summary document the history store records.

One summary captures everything the trends comparator needs to say
"did this run get slower, and where": provenance (git sha via the
telemetry stamp), a scenario digest tying comparable runs together,
wall clock, deterministic counters, cache hit rates, per-phase self
times (from the run's spans, when telemetry was on) and the solver
observatory aggregate (:mod:`repro.telemetry.solver`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Optional

from repro.telemetry.export import spans_to_events, stamp

__all__ = ["SUMMARY_VERSION", "scenario_digest", "phase_self_times", "run_summary"]

SUMMARY_VERSION = 1


def scenario_digest(payload: object) -> str:
    """A short stable digest of whatever describes the scenario.

    Accepts any JSON-serialisable value (a config-describe string, a spec
    document, a grid-point document); runs recorded with equal digests are
    directly comparable — same work, only the code or machine changed.
    """
    blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def phase_self_times(spans: Iterable) -> Dict[str, float]:
    """Per-phase *self* seconds (children subtracted) from span records."""
    from repro.telemetry.report import analyze_events

    report = analyze_events(spans_to_events(spans))
    return {
        name: round(phase.self_time, 6)
        for name, phase in report.phases.items()
    }


def run_summary(
    kind: str,
    label: str,
    *,
    wall_seconds: float,
    digest: Optional[str] = None,
    stats=None,
    spans: Optional[Iterable] = None,
    solver: Optional[Dict] = None,
    meta: Optional[Dict] = None,
) -> Dict[str, object]:
    """Assemble one history-store summary document.

    ``stats`` is a ``CampaignStats`` (or None for runs without one, e.g.
    benchmarks); ``spans``/``solver`` are the run's telemetry payloads and
    may be absent — the comparator only gates on what both sides have.
    """
    counters: Dict[str, int] = {}
    cache_rates: Dict[str, float] = {}
    if stats is not None:
        counters = dict(stats.deterministic_counters())
        cache_rates = {
            name: round(rate, 6)
            for name, rate in stats.cache_hit_rates().items()
        }
    solver_seconds: Optional[float] = None
    solver_queries: Optional[int] = None
    if solver:
        from repro.telemetry.solver import doc_totals

        totals = doc_totals(solver)
        solver_seconds = totals["seconds_us"] / 1e6
        solver_queries = int(totals["queries"])
    return {
        "version": SUMMARY_VERSION,
        "kind": kind,
        "label": label,
        "digest": digest,
        "meta": meta if meta is not None else stamp(),
        "wall_seconds": round(float(wall_seconds), 6),
        "counters": counters,
        "cache_hit_rates": cache_rates,
        "phase_self_seconds": phase_self_times(spans) if spans else {},
        "solver_seconds": solver_seconds,
        "solver_queries": solver_queries,
        "solver": solver,
    }
