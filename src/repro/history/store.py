"""The sqlite-backed cross-run performance history store.

One row per completed run (validate / sweep grid point / service job /
benchmark): a stamped summary document (see :mod:`repro.history.summary`)
plus the indexed columns the CLI filters on — kind, label, git sha and the
scenario digest.  The store is append-only in normal operation; rows are
ordered by their autoincrement id, which is also the id ``repro-scamv
history`` and ``trends`` address runs by.

Concurrency model mirrors :mod:`repro.service.queue`: WAL journal, one
connection guarded by a lock, so the daemon's orchestrator thread and a
CLI reader can share the file.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, List, Optional

__all__ = ["HistoryStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at TEXT NOT NULL,
    kind        TEXT NOT NULL,
    label       TEXT NOT NULL,
    git_sha     TEXT,
    digest      TEXT,
    summary     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_label ON runs (label, id);
CREATE INDEX IF NOT EXISTS runs_kind ON runs (kind, id);
"""


class HistoryStore:
    """Append and query run summaries in one sqlite file."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- writing ---------------------------------------------------------------

    def record(self, summary: Dict[str, object]) -> int:
        """Append one run summary; returns the new run id.

        ``kind``/``label``/``digest`` and the stamp's git sha are lifted
        out of the document into indexed columns; the document itself is
        stored verbatim.
        """
        meta = summary.get("meta") or {}
        recorded = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO runs "
                "(recorded_at, kind, label, git_sha, digest, summary) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    recorded,
                    str(summary.get("kind", "run")),
                    str(summary.get("label", "")),
                    meta.get("git_sha") if isinstance(meta, dict) else None,
                    summary.get("digest"),
                    json.dumps(summary, sort_keys=True),
                ),
            )
            self._conn.commit()
            return int(cursor.lastrowid)

    # -- reading ---------------------------------------------------------------

    def get(self, run_id: int) -> Optional[Dict[str, object]]:
        """One run row (summary plus store metadata), or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        return self._row(row) if row is not None else None

    def runs(
        self,
        limit: int = 20,
        label: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """The most recent runs, newest first, optionally filtered."""
        query = "SELECT * FROM runs"
        clauses, params = [], []  # type: ignore[var-annotated]
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC LIMIT ?"
        params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [self._row(row) for row in rows]

    def latest(
        self, label: Optional[str] = None, kind: Optional[str] = None
    ) -> Optional[Dict[str, object]]:
        rows = self.runs(limit=1, label=label, kind=kind)
        return rows[0] if rows else None

    def baseline_for(self, run: Dict[str, object]) -> Optional[Dict[str, object]]:
        """The natural comparison baseline of a run: the most recent
        *earlier* run with the same label and scenario digest; failing
        that, the same label; failing that, any earlier run."""
        run_id = int(run["id"])
        for clause, params in (
            (
                "label = ? AND digest IS ?",
                [run.get("label"), run.get("digest")],
            ),
            ("label = ?", [run.get("label")]),
            ("1=1", []),
        ):
            with self._lock:
                row = self._conn.execute(
                    f"SELECT * FROM runs WHERE id < ? AND {clause} "
                    "ORDER BY id DESC LIMIT 1",
                    [run_id] + params,
                ).fetchone()
            if row is not None:
                return self._row(row)
        return None

    @staticmethod
    def _row(row: sqlite3.Row) -> Dict[str, object]:
        summary = json.loads(row["summary"])
        return {
            "id": int(row["id"]),
            "recorded_at": row["recorded_at"],
            "kind": row["kind"],
            "label": row["label"],
            "git_sha": row["git_sha"],
            "digest": row["digest"],
            "summary": summary,
        }
