#!/usr/bin/env python3
"""Cache-coloring validation campaign (paper §6.2, Table 1 Mpart columns).

Runs three scaled-down Scam-V campaigns over the Stride template:

1. Mpart without refinement (path coverage only),
2. Mpart refined by Mpart' with Mline coverage — prefetching breaks the
   partitioning model, and refinement finds counterexamples far faster,
3. the page-aligned attacker region — the prefetcher stops at the 4 KiB
   page boundary, so no counterexamples appear, supporting the paper's
   conclusion that page-aligned cache coloring survives prefetching.

Run:  python examples/cache_coloring.py
"""

from repro.exps import mpart_campaign
from repro.pipeline import ScamV, format_table


def main() -> None:
    programs, tests = 8, 20
    campaigns = [
        mpart_campaign(
            refined=False, num_programs=programs, tests_per_program=tests, seed=11
        ),
        mpart_campaign(
            refined=True, num_programs=programs, tests_per_program=tests, seed=11
        ),
        mpart_campaign(
            refined=True,
            page_aligned=True,
            num_programs=programs,
            tests_per_program=tests,
            seed=11,
        ),
    ]
    stats = []
    for config in campaigns:
        print(f"running {config.name} ...")
        stats.append(ScamV(config).run().stats)
    print()
    print(format_table(stats, title="Cache coloring vs. prefetching (cf. Table 1)"))
    print()
    unref, ref, aligned = stats
    if ref.counterexample_rate > unref.counterexample_rate:
        factor = (
            ref.counterexample_rate / unref.counterexample_rate
            if unref.counterexample_rate
            else float("inf")
        )
        print(
            f"Refinement raises the counterexample rate by ~{factor:.0f}x "
            "(the paper reports ~20x more counterexamples)."
        )
    print(
        f"Page-aligned region: {aligned.counterexamples} counterexamples "
        "(the paper also finds none: prefetching stops at the page boundary)."
    )


if __name__ == "__main__":
    main()
