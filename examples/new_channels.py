#!/usr/bin/env python3
"""Extending Scam-V to new side channels (paper §2.3, §3).

The paper notes that analysing a new channel only needs (1) a new
observation-augmentation module and (2) a new channel measurement in the
test executor.  This example exercises both worked extensions:

* **TLB channel** — validates a set-index-only observational model (the
  attacker resolves cache sets, not addresses) against the simulated data
  micro-TLB.  The model is unsound: same-set/different-page accesses leave
  different TLB states.  The ``Mpage`` refinement drives generation right
  at those pairs.

* **Timing channel** — validates the program-counter security model
  ("execution time depends only on control flow", Molnar et al., cited in
  §7) against the cycle counter on a core with an early-termination
  multiplier.  The ``Mtime`` refinement observes multiplier operands, and
  the §3 running-example coverage enumerates operand-magnitude classes.

Run:  python examples/new_channels.py
"""

from repro.exps import timing_campaign, tlb_campaign
from repro.pipeline import ScamV, format_table


def main() -> None:
    programs, tests = 8, 15
    campaigns = [
        tlb_campaign(refined=False, num_programs=programs, tests_per_program=tests, seed=61),
        tlb_campaign(refined=True, num_programs=programs, tests_per_program=tests, seed=61),
        timing_campaign(refined=False, num_programs=programs, tests_per_program=tests, seed=62),
        timing_campaign(refined=True, num_programs=programs, tests_per_program=tests, seed=62),
    ]
    stats = []
    for config in campaigns:
        print(f"running {config.name} ...")
        stats.append(ScamV(config).run().stats)
    print()
    print(format_table(stats, title="New channels: TLB and variable-time arithmetic"))
    print()
    print("Both models are unsound for their channel; in both cases the")
    print("refined observations (pages / multiplier operands) steer the")
    print("search straight to counterexamples, while unguided relational")
    print("testing generates state pairs too similar to differ.")


if __name__ == "__main__":
    main()
