#!/usr/bin/env python3
"""Quickstart: validate a constant-time model on the paper's running example.

This walks the whole Fig. 1 pipeline once, by hand, on the Fig. 2 program:

    ldr x2, [x0]            @ observe load address
    add x1, x1, #1          @ no observation
    cmp x0, x1
    b.ge end                @ observe branch outcome (via pc observations)
    ldr x3, [x2]            @ observe load address
    end: ret

1. assemble and lift the program,
2. augment it with the Mct+Mspec observations,
3. symbolically execute it and print the per-path observation lists,
4. synthesize the refinement relation for one path pair,
5. generate a test case (two states, equivalent under Mct, differing in
   their speculative observations) and a predictor-training state,
6. run the experiment on the simulated Cortex-A53 and report the outcome.

Run:  python examples/quickstart.py
"""

from repro.bir import format_program
from repro.core import TestCaseGenerator
from repro.core.relation import RelationSynthesizer
from repro.hw import ExperimentPlatform, PlatformConfig
from repro.isa import assemble, lift
from repro.obs import MspecModel
from repro.symbolic import execute
from repro.utils.rng import SplittableRandom

RUNNING_EXAMPLE = """
    ldr x2, [x0]
    add x1, x1, #1
    cmp x0, x1
    b.ge end
    ldr x3, [x2]
end:
    ret
"""


def main() -> None:
    asm = assemble(RUNNING_EXAMPLE, name="fig2")
    model = MspecModel()

    print("=== Augmented BIR program (Mct observations + Mspec shadows) ===")
    augmented = model.augment(lift(asm))
    print(format_program(augmented))

    print("\n=== Symbolic execution ===")
    result = execute(augmented)
    print(result.describe())

    print("\n=== Refinement relation for the branch-taken path pair ===")
    synthesizer = RelationSynthesizer(result, refinement=True)
    for pair in synthesizer.feasible_pairs():
        marker = "usable" if pair.usable_for_refinement else "no refined obs"
        print(
            f"paths ({pair.path1_index}, {pair.path2_index}): "
            f"{len(pair.base_equalities)} base equalities, {marker}"
        )

    print("\n=== Generate and run a test case ===")
    generator = TestCaseGenerator(asm, model, rng=SplittableRandom(2021))
    platform = ExperimentPlatform(PlatformConfig())
    for index in range(5):
        test = generator.generate()
        if test is None:
            print(f"test {index}: generation failed")
            continue
        outcome = platform.run_experiment(
            asm, test.state1, test.state2, test.train
        ).outcome
        print(
            f"test {index}: paths {test.pair} "
            f"x0=({test.state1.regs.get('x0', 0):#x}, "
            f"{test.state2.regs.get('x0', 0):#x}) -> {outcome.value}"
        )
    print(
        "\nA 'counterexample' outcome demonstrates that the constant-time "
        "model Mct is unsound on this core: the two states are equivalent "
        "under Mct, yet the single speculative load distinguishes them "
        "(the SiSCLoak effect, paper §6.4)."
    )


if __name__ == "__main__":
    main()
