#!/usr/bin/env python3
"""SiSCLoak end-to-end attack demo (paper §6.4, Fig. 6).

Mounts both Fig. 6 counterexamples against the simulated Cortex-A53 and
recovers the secret with Flush+Reload and the PMC cycle counter:

* **v1** — Spectre-PHT with the array load anticipated above the bounds
  check: an out-of-bounds index leaks the out-of-bounds value through a
  single speculative load.
* **classification bit** — array elements carry a confidentiality flag in
  their top bit; a mispredicted flag check leaks a confidential element.

Run:  python examples/siscloak_attack.py
"""

from repro.attacks import (
    SiSCloakAttack,
    siscloak_classification_program,
    siscloak_v1_program,
)
from repro.attacks.siscloak import A_BASE, LINE, SECRET_FLAG
from repro.isa.assembler import disassemble


def attack_v1() -> None:
    print("=== SiSCLoak v1: anticipated-load Spectre-PHT ===")
    program = siscloak_v1_program()
    print(disassemble(program))
    # Array A holds 4 public elements (valid line-granular indices into B);
    # the secret sits just past the bound, at A[size].
    size = 4 * 8
    secret = 37 * LINE
    memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
    memory[A_BASE + size] = secret

    attack = SiSCloakAttack(program, memory)
    outcome = attack.recover(
        benign_regs={"x0": 8, "x1": size},  # in bounds: trains "not taken"
        malicious_regs={"x0": size, "x1": size},  # out of bounds
        secret=secret,
    )
    print(
        f"secret byte index {secret // LINE}: recovered="
        f"{outcome.recovered // LINE if outcome.recovered is not None else '?'}"
        f" -> {'SUCCESS' if outcome.success else 'FAILED'} "
        f"({outcome.probes} Flush+Reload probes)\n"
    )


def attack_classification() -> None:
    print("=== SiSCLoak: classification bit in the element ===")
    program = siscloak_classification_program()
    print(disassemble(program))
    # Public elements have a clear top bit; the confidential element at
    # A[4] is flagged.  The attacker knows the flag convention and probes
    # the flagged range of B.
    secret = SECRET_FLAG | (29 * LINE)
    memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
    memory[A_BASE + 4 * 8] = secret

    attack = SiSCloakAttack(
        program,
        memory,
        candidate_offsets=[SECRET_FLAG | (i * LINE) for i in range(64)],
    )
    outcome = attack.recover(
        benign_regs={"x0": 8},  # public element: trains "not taken"
        malicious_regs={"x0": 4 * 8},  # the confidential element
        secret=secret,
    )
    print(
        f"confidential element: recovered="
        f"{hex(outcome.recovered) if outcome.recovered is not None else '?'}"
        f" (expected {hex(secret)}) -> "
        f"{'SUCCESS' if outcome.success else 'FAILED'}\n"
    )


def main() -> None:
    attack_v1()
    attack_classification()
    print(
        "Both leaks require only a single speculative load whose address\n"
        "was computed before the branch: the simulated A53 never forwards\n"
        "speculative results, matching ARM's design, yet still leaks."
    )


if __name__ == "__main__":
    main()
