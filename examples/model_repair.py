#!/usr/bin/env python3
"""Automatic model repair (paper §8, future work).

The paper's concluding remarks propose refining unsound observation
models "to automatically restore their soundness, e.g., by adding state
observations".  This example runs that loop on three unsound models:

1. **Mct vs. speculation** — promoted to observe transient load addresses
   (which is exactly the always-mispredict over-approximation Guarnieri et
   al. proved sound, cited in §7);
2. **set-index-only model vs. the TLB** — promoted to observe page numbers;
3. **pc-security model vs. variable-time multiply** — promoted to observe
   multiplier operands.

Each loop validates, promotes the refinement's observations into the model
under validation, and re-validates until no counterexamples remain.

Run:  python examples/model_repair.py
"""

from repro.core.repair import ModelRepairer
from repro.exps import mct_campaign, timing_campaign, tlb_campaign


def main() -> None:
    settings = [
        (
            "Mct against Cortex-A53 speculation (Template A)",
            mct_campaign("A", refined=True, num_programs=5, tests_per_program=10, seed=71),
        ),
        (
            "set-index-only model against the TLB channel",
            tlb_campaign(refined=True, num_programs=5, tests_per_program=10, seed=72),
        ),
        (
            "pc-security model against the timing channel",
            timing_campaign(refined=True, num_programs=5, tests_per_program=10, seed=73),
        ),
    ]
    for title, campaign in settings:
        print(f"=== {title} ===")
        report = ModelRepairer(campaign).repair()
        print(report.describe())
        print()
    print(
        "In each case one promotion suffices: the refined observations the\n"
        "counterexamples exploited are precisely the state the model was\n"
        "missing."
    )


if __name__ == "__main__":
    main()
