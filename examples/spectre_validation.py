#!/usr/bin/env python3
"""Speculation-model validation campaigns (paper §6.3 and §6.5).

Reproduces, at reduced scale, the speculation side of Table 1 and the
Fig. 7 table:

* Mct on Template A, with and without Mspec refinement — refinement turns
  a needle-in-a-haystack search into near-certain detection (SiSCLoak).
* Mct on Template C with Mspec — leaking programs that "cannot be detected
  without refinement".
* Mspec1 on Templates C and B — bounding the scope of speculation: the
  result of a transient load is never forwarded (no counterexamples on the
  causally-dependent Template C), but two independent transient loads can
  both issue (counterexamples on Template B).
* Mct with Mspec' on Template D — no straight-line speculation past direct
  unconditional branches.

Run:  python examples/spectre_validation.py
"""

from repro.exps import mct_campaign, mspec1_campaign, straightline_campaign
from repro.pipeline import ScamV, format_table


def main() -> None:
    programs, tests = 8, 20
    campaigns = [
        mct_campaign("A", refined=False, num_programs=programs, tests_per_program=tests, seed=21),
        mct_campaign("A", refined=True, num_programs=programs, tests_per_program=tests, seed=21),
        mct_campaign("C", refined=False, num_programs=programs, tests_per_program=tests, seed=22),
        mct_campaign("C", refined=True, num_programs=programs, tests_per_program=tests, seed=22),
        mspec1_campaign("C", num_programs=programs, tests_per_program=tests, seed=23),
        mspec1_campaign("B", num_programs=programs, tests_per_program=tests, seed=23),
        straightline_campaign(num_programs=programs, tests_per_program=tests, seed=24),
    ]
    stats = []
    for config in campaigns:
        print(f"running {config.name} ...")
        stats.append(ScamV(config).run().stats)
    print()
    print(format_table(stats, title="Speculative leakage (cf. Table 1 / Fig. 7)"))
    print()
    print("Expected shape (paper §6.3-§6.5):")
    print(" * Mct+Mspec finds counterexamples on A and C; unguided finds ~none.")
    print(" * Mspec1 on C finds none (transient loads are not forwarded),")
    print("   on B a few (independent transient loads can both issue).")
    print(" * Template D finds none (no straight-line speculation for")
    print("   direct branches), supporting the ARM claim.")


if __name__ == "__main__":
    main()
