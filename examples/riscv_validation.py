#!/usr/bin/env python3
"""Multi-architecture support: validating models on RISC-V programs.

Scam-V handles multiple architectures by translating binaries into its
intermediate language (paper §2.3: "Currently ARMv8, CortexM0, and
RISC-V").  This example assembles a Spectre-shaped RV64 victim with the
RISC-V front-end and runs the identical validation pipeline — lifting,
Mct+Mspec augmentation, refinement-guided generation, and execution on the
simulated core.

Run:  python examples/riscv_validation.py
"""

from repro.core import TestCaseGenerator
from repro.hw import ExperimentPlatform, PlatformConfig
from repro.hw.profiles import cortex_a53_no_speculation
from repro.isa import assemble_riscv, lift
from repro.obs import MspecModel
from repro.symbolic import execute
from repro.utils.rng import SplittableRandom

VICTIM = """
    ld   a2, 0(a0)       # load the attacker-indexed element
    bge  a1, a4, done    # bounds-style check
    add  a3, a5, a2      # compute the dependent address
    ld   a6, 0(a3)       # use the loaded value
done:
    ret
"""


def main() -> None:
    asm = assemble_riscv(VICTIM, name="rv_victim")
    model = MspecModel()

    print("=== Symbolic execution of the lifted RISC-V program ===")
    result = execute(model.augment(lift(asm)))
    print(result.describe())

    print("\n=== Refinement-guided validation ===")
    generator = TestCaseGenerator(asm, model, rng=SplittableRandom(13))
    platform = ExperimentPlatform(PlatformConfig())
    fenced = ExperimentPlatform(
        PlatformConfig(core=cortex_a53_no_speculation())
    )
    found = fenced_found = 0
    total = 8
    for _ in range(total):
        test = generator.generate()
        if test is None:
            continue
        found += platform.run_experiment(
            asm, test.state1, test.state2, test.train
        ).distinguishable
        fenced_found += fenced.run_experiment(
            asm, test.state1, test.state2, test.train
        ).distinguishable
    print(f"speculative core:     {found}/{total} counterexamples")
    print(f"speculation disabled: {fenced_found}/{total} counterexamples")
    print(
        "\nThe same IL-level models and refinement machinery validate the\n"
        "RISC-V victim unchanged; the leak disappears once speculation is\n"
        "fenced off."
    )


if __name__ == "__main__":
    main()
