"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine lacks ``wheel`` (offline), so the
PEP 660 editable route fails; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) work with the legacy code path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
