"""Table 1, Mct Template B columns (§6.3).

Paper numbers (942/941 programs): unguided testing finds **no**
counterexamples in 37680 experiments over 138 hours; with Mspec
refinement, 4838/37640 experiments are counterexamples (~13%) across
~half the programs, first one after 11 minutes.

Expected shape: zero (or near-zero) unguided counterexamples; refinement
finds them across most programs.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import mct_campaign


def bench_table1_mct_template_b(campaigns):
    unref = campaigns.run_unmeasured(
        mct_campaign(
            "B",
            refined=False,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=104,
        )
    )
    refined = campaigns.run(
        mct_campaign(
            "B",
            refined=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=104,
        )
    )
    campaigns.report("Table 1 / Mct Template B (general template)")

    assert unref.counterexample_rate < 0.05
    assert refined.counterexamples > 0
    assert (
        refined.programs_with_counterexamples
        >= refined.programs // 2
    )
