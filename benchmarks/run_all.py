#!/usr/bin/env python3
"""Run every reproduction campaign at a chosen scale and print the tables.

This is the convenience driver behind EXPERIMENTS.md: it regenerates both
paper tables and the extension campaigns in one go, with per-column wall
times.  (The pytest-benchmark harness in this directory measures the same
campaigns one file per table column.)

Usage:  python benchmarks/run_all.py [programs] [tests] [seed]
"""

from __future__ import annotations

import sys
import time

from repro.exps import (
    mct_campaign,
    mpart_campaign,
    mspec1_campaign,
    straightline_campaign,
    timing_campaign,
    tlb_campaign,
)
from repro.pipeline import ScamV, format_table


def run_group(title, configs):
    stats = []
    for config in configs:
        started = time.monotonic()
        stats.append(ScamV(config).run().stats)
        elapsed = time.monotonic() - started
        print(f"  {config.name}: {elapsed:.1f}s", file=sys.stderr)
    print()
    print(format_table(stats, title=title))
    return stats


def main() -> None:
    programs = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    tests = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    n = dict(num_programs=programs, tests_per_program=tests)

    run_group(
        "Table 1 (scaled reproduction)",
        [
            mpart_campaign(refined=False, seed=seed + 1, **n),
            mpart_campaign(refined=True, seed=seed + 1, **n),
            mpart_campaign(refined=False, page_aligned=True, seed=seed + 2, **n),
            mpart_campaign(refined=True, page_aligned=True, seed=seed + 2, **n),
            mct_campaign("A", refined=False, seed=seed + 3, **n),
            mct_campaign("A", refined=True, seed=seed + 3, **n),
            mct_campaign("B", refined=False, seed=seed + 4, **n),
            mct_campaign("B", refined=True, seed=seed + 4, **n),
        ],
    )
    run_group(
        "Fig. 7 table (scaled reproduction)",
        [
            mct_campaign("C", refined=False, seed=seed + 5, **n),
            mct_campaign("C", refined=True, seed=seed + 5, **n),
            mspec1_campaign("C", seed=seed + 6, **n),
            mspec1_campaign(
                "B",
                seed=seed + 6,
                num_programs=2 * programs,
                tests_per_program=tests,
            ),
            straightline_campaign(seed=seed + 7, **n),
        ],
    )
    run_group(
        "New-channel extensions (§2.3)",
        [
            tlb_campaign(refined=False, seed=seed + 8, **n),
            tlb_campaign(refined=True, seed=seed + 8, **n),
            timing_campaign(refined=False, seed=seed + 9, **n),
            timing_campaign(refined=True, seed=seed + 9, **n),
        ],
    )


if __name__ == "__main__":
    main()
