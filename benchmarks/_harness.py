"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one column of the paper's Table 1 or Fig. 7
table at reduced scale, prints the same row layout the paper reports, and
asserts the qualitative shape (who finds counterexamples, roughly by what
factor).  Run with::

    pytest benchmarks/ --benchmark-only -s

Scale knobs: set ``REPRO_BENCH_PROGRAMS`` / ``REPRO_BENCH_TESTS`` in the
environment to change the number of generated programs and of test cases
per program (defaults 12 and 16).
"""

from __future__ import annotations

import os

from repro.pipeline import ScamV, format_table

BENCH_PROGRAMS = int(os.environ.get("REPRO_BENCH_PROGRAMS", "12"))
BENCH_TESTS = int(os.environ.get("REPRO_BENCH_TESTS", "16"))


class CampaignRunner:
    """Runs campaigns inside a benchmark and reports paper-style rows."""

    def __init__(self, benchmark):
        self.benchmark = benchmark
        self.stats = []

    def run(self, config):
        result_holder = {}

        def once():
            result_holder["result"] = ScamV(config).run()

        # One round: a campaign is the unit of measurement, as in the paper
        # (total wall time ~ generation + execution of every experiment).
        self.benchmark.pedantic(once, rounds=1, iterations=1)
        stats = result_holder["result"].stats
        self.stats.append(stats)
        self._record(stats)
        return stats

    def run_unmeasured(self, config):
        """Run a comparison column without timing it."""
        stats = ScamV(config).run().stats
        self.stats.append(stats)
        self._record(stats)
        return stats

    def _record(self, stats):
        prefix = stats.name
        info = self.benchmark.extra_info
        info[f"{prefix} :: experiments"] = stats.experiments
        info[f"{prefix} :: counterexamples"] = stats.counterexamples
        info[f"{prefix} :: inconclusive"] = stats.inconclusive
        info[f"{prefix} :: programs_with_cex"] = (
            stats.programs_with_counterexamples
        )
        if stats.time_to_counterexample is not None:
            info[f"{prefix} :: ttc_s"] = round(stats.time_to_counterexample, 3)

    def report(self, title):
        print()
        print(format_table(self.stats, title=title))


