"""Parallel runner speedup vs. the sequential driver.

Runs a Table 1-sized workload (the Mct Template A column, scaled by the
usual ``REPRO_BENCH_*`` knobs) once through the sequential ``ScamV`` loop
and once through the :class:`~repro.runner.ParallelRunner` at
``REPRO_BENCH_WORKERS`` (default 4) workers, asserts the two results are
bit-identical, and reports the wall-clock speedup.

On a machine with >= 4 usable cores the parallel run must be at least 2x
faster; on fewer cores (e.g. a 1-core CI container, where the pool can
only interleave) the speedup is reported but not asserted.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_runner.py
"""

from __future__ import annotations

import os
import sys
import time

from repro.exps import mct_campaign
from repro.pipeline import ScamV
from repro.runner import ParallelRunner, RunnerConfig

from _harness import BENCH_PROGRAMS, BENCH_TESTS

BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _workload():
    return mct_campaign(
        "A",
        refined=True,
        num_programs=BENCH_PROGRAMS,
        tests_per_program=BENCH_TESTS,
        seed=0,
    )


def _fingerprint(result):
    return (
        result.stats.deterministic_counters(),
        [
            (r.program_index, r.outcome.value, r.test.state1, r.test.state2)
            for r in result.records
        ],
    )


def _measure():
    config = _workload()
    started = time.monotonic()
    sequential = ScamV(config).run()
    sequential_s = time.monotonic() - started

    runner = ParallelRunner(RunnerConfig(workers=BENCH_WORKERS))
    started = time.monotonic()
    parallel = runner.run(config)
    parallel_s = time.monotonic() - started

    assert _fingerprint(sequential) == _fingerprint(parallel), (
        "parallel result diverged from sequential result"
    )
    speedup = sequential_s / parallel_s if parallel_s else float("inf")
    return sequential, sequential_s, parallel_s, speedup


def _report(stats, sequential_s, parallel_s, speedup):
    print()
    print(
        f"sequential: {sequential_s:.2f}s   "
        f"{BENCH_WORKERS} workers: {parallel_s:.2f}s   "
        f"speedup: {speedup:.2f}x on {_usable_cpus()} usable cpu(s)"
    )
    print(
        f"workload: {stats.programs} programs x "
        f"{BENCH_TESTS} tests ({stats.experiments} experiments, "
        f"{stats.counterexamples} counterexamples)"
    )


def bench_parallel_speedup(benchmark):
    result_holder = {}

    def once():
        result_holder["m"] = _measure()

    benchmark.pedantic(once, rounds=1, iterations=1)
    sequential, sequential_s, parallel_s, speedup = result_holder["m"]
    info = benchmark.extra_info
    info["sequential_s"] = round(sequential_s, 3)
    info[f"parallel_{BENCH_WORKERS}w_s"] = round(parallel_s, 3)
    info["speedup"] = round(speedup, 3)
    info["usable_cpus"] = _usable_cpus()
    _report(sequential.stats, sequential_s, parallel_s, speedup)
    if _usable_cpus() >= 4 and BENCH_WORKERS >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {BENCH_WORKERS} workers on "
            f"{_usable_cpus()} cpus, measured {speedup:.2f}x"
        )


def main() -> int:
    sequential, sequential_s, parallel_s, speedup = _measure()
    _report(sequential.stats, sequential_s, parallel_s, speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
