"""Extension benchmark: the §8 model-repair loop.

Measures the full validate -> promote -> re-validate loop that restores
the soundness of Mct against Cortex-A53 speculation, and asserts it
converges in one promotion.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.core.repair import ModelRepairer
from repro.exps import mct_campaign


def bench_model_repair_mct(benchmark):
    campaign = mct_campaign(
        "A",
        refined=True,
        num_programs=max(3, BENCH_PROGRAMS // 3),
        tests_per_program=max(6, BENCH_TESTS // 2),
        seed=112,
    )

    def repair_once():
        return ModelRepairer(campaign).repair()

    report = benchmark.pedantic(repair_once, rounds=1, iterations=1)
    print()
    print(report.describe())
    benchmark.extra_info["promotions"] = report.promotions
    assert report.succeeded
    assert report.promotions == 1
