#!/usr/bin/env python
"""Microbenchmark for the hash-consed expression core (ISSUE 2).

Measures the interning/memoization layer against the un-cached baseline on
template-shaped workloads, A/B style within one process:

* ``construct``   — rebuilding template-shaped expression trees,
* ``simplify``    — repeated :func:`repro.bir.simp.simplify` over the path
  conditions and observation terms of symbolically executed templates,
* ``compile``     — repeated :func:`repro.smt.compiled.compile_expr`,
* ``rename``      — repeated two-state renaming of path conditions,
* ``solve_heavy`` — the end-to-end hot path: repeated test-case generation
  (pair relations, prepared constraints, stochastic solving) for a batch
  of template programs — many attempts per program, the shape of a real
  campaign shard,
* ``solve_coverage`` — the same loop under cache-set coverage pinning,
  where many pair/coverage combinations are unsatisfiable and the solver
  spends most of its time exhausting restart budgets (reported for
  tracking; caching cannot help a search that must run to exhaustion).

The baseline disables interning/memoization (``intern.set_enabled(False)``)
and warm restarts, which restores the pre-interning cost model: every
construction allocates, every ``simplify``/``compile_expr`` re-walks, every
attempt re-prepares its constraints, and restarts always resample cold.

Emits ``BENCH_expr_core.json`` (the bench-trajectory baseline format: one
entry per scenario with baseline/optimized seconds and the speedup).

Usage::

    PYTHONPATH=src python benchmarks/bench_expr_core.py           # full run
    PYTHONPATH=src python benchmarks/bench_expr_core.py --smoke   # CI smoke
    PYTHONPATH=src python benchmarks/bench_expr_core.py --check   # assert 2x

``--check`` exits non-zero unless the solve-heavy speedup is >= 2x (the
acceptance bar for the interning PR); smoke mode shrinks every workload to
a few iterations so CI can catch gross hot-path regressions cheaply.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bir import expr as E
from repro.bir import intern
from repro.bir.simp import simplify
from repro.core.coverage import MlineCoverage, NoCoverage
from repro.core.rename import rename_expr
from repro.core.testgen import TestCaseGenerator, TestGenConfig
from repro.gen.templates import TemplateB, TemplateC
from repro.obs.base import AttackerRegion
from repro.obs.models import MspecModel
from repro.smt.compiled import compile_expr
from repro.smt.solver import SolverConfig
from repro.telemetry.export import stamp
from repro.utils.rng import SplittableRandom


def _template_terms(programs):
    """Path conditions + observation terms of executed template programs."""
    model = MspecModel()
    terms = []
    for asm in programs:
        generator = TestCaseGenerator(asm, model)
        for path in generator.result:
            terms.extend(path.path_condition)
            for obs in path.observations:
                terms.append(obs.guard)
                terms.extend(obs.exprs)
    return terms


def _generate_programs(count, seed=2024):
    rng = SplittableRandom(seed)
    templates = [TemplateB(), TemplateC()]
    out = []
    for index in range(count):
        template = templates[index % len(templates)]
        out.append(template.generate(rng.split(f"prog{index}")).asm)
    return out


def _bench_construct(iterations):
    """Rebuild a template-shaped address/compare tree many times."""

    def build(i):
        base = E.var(f"x{i % 8}")
        offset = E.var(f"x{(i + 1) % 8}")
        addr = E.add(E.add(base, offset), E.const(8 * (i % 16)))
        line = E.band(E.lshr(addr, E.const(6)), E.const(127))
        load = E.Load(E.MemVar("MEM"), addr, 64)
        return E.bool_and(
            E.ule(E.const(61), line),
            E.ule(line, E.const(127)),
            E.ult(load, E.var(f"x{(i + 2) % 8}")),
        )

    started = time.perf_counter()
    for round_index in range(iterations):
        for i in range(32):
            build(i)
    return time.perf_counter() - started


def _bench_simplify(terms, iterations):
    started = time.perf_counter()
    for _ in range(iterations):
        for term in terms:
            simplify(term)
    return time.perf_counter() - started


def _bench_compile(terms, iterations):
    started = time.perf_counter()
    for _ in range(iterations):
        for term in terms:
            compile_expr(term)
    return time.perf_counter() - started


def _bench_rename(terms, iterations):
    started = time.perf_counter()
    for _ in range(iterations):
        for term in terms:
            rename_expr(term, 1)
            rename_expr(term, 2)
    return time.perf_counter() - started


def _bench_solve_heavy(programs, tests_per_program, warm_restarts, coverage):
    """End-to-end generation: the campaign hot path minus hw execution."""
    model = MspecModel()
    config = TestGenConfig(solver=SolverConfig(warm_restarts=warm_restarts))
    rng = SplittableRandom(7)
    started = time.perf_counter()
    generated = 0
    for index, asm in enumerate(programs):
        generator = TestCaseGenerator(
            asm,
            model,
            config=config,
            rng=rng.split(f"gen{index}"),
            coverage=coverage,
        )
        for _ in range(tests_per_program):
            if generator.generate() is not None:
                generated += 1
    return time.perf_counter() - started, generated


def run(smoke):
    iterations = 20 if smoke else 400
    solve_programs = 2 if smoke else 8
    solve_tests = 6 if smoke else 48
    coverage_tests = 2 if smoke else 12

    programs = _generate_programs(solve_programs)
    scenarios = {}

    def measure(name, fn):
        # Baseline first, optimized second; caches are cleared around both
        # so neither mode sees the other's state.
        intern.set_enabled(False)
        baseline = fn()
        intern.set_enabled(True)
        optimized = fn()
        scenarios[name] = {
            "baseline_s": round(baseline, 6),
            "optimized_s": round(optimized, 6),
            "speedup": round(baseline / optimized, 3) if optimized else None,
        }
        return scenarios[name]

    # Term corpus for the micro scenarios (built once, outside the timers).
    intern.set_enabled(True)
    terms = _template_terms(programs)

    measure("construct", lambda: _bench_construct(iterations))
    measure("simplify", lambda: _bench_simplify(terms, iterations))
    measure("compile", lambda: _bench_compile(terms, iterations))
    measure("rename", lambda: _bench_rename(terms, iterations))

    # Solve A/B: the baseline additionally disables warm restarts, the
    # solver-side half of the tentpole.
    solve_cases = (
        ("solve_heavy", NoCoverage(), solve_tests),
        ("solve_coverage", MlineCoverage(AttackerRegion(61, 127)), coverage_tests),
    )
    for name, coverage, tests in solve_cases:
        intern.set_enabled(False)
        baseline_s, baseline_tests = _bench_solve_heavy(
            programs, tests, warm_restarts=False, coverage=coverage
        )
        intern.set_enabled(True)
        optimized_s, optimized_tests = _bench_solve_heavy(
            programs, tests, warm_restarts=True, coverage=coverage
        )
        scenarios[name] = {
            "baseline_s": round(baseline_s, 6),
            "optimized_s": round(optimized_s, 6),
            "speedup": (
                round(baseline_s / optimized_s, 3) if optimized_s else None
            ),
            "baseline_tests": baseline_tests,
            "optimized_tests": optimized_tests,
        }

    report = {
        "bench": "expr_core",
        "meta": stamp(),
        "smoke": smoke,
        "params": {
            "iterations": iterations,
            "terms": len(terms),
            "solve_programs": solve_programs,
            "solve_tests_per_program": solve_tests,
            "coverage_tests_per_program": coverage_tests,
        },
        "scenarios": scenarios,
        "cache_stats": {
            name: {"hits": stats["hits"], "misses": stats["misses"]}
            for name, stats in intern.cache_stats().items()
        },
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny iteration counts (CI regression canary)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the solve-heavy speedup is >= 2x",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_expr_core.json",
        ),
        help="output JSON path (default: repo-root BENCH_expr_core.json)",
    )
    args = parser.parse_args(argv)

    report = run(smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in report["scenarios"])
    for name, row in report["scenarios"].items():
        print(
            f"{name.ljust(width)}  baseline {row['baseline_s']:.4f}s  "
            f"optimized {row['optimized_s']:.4f}s  "
            f"speedup {row['speedup']}x"
        )
    meta = report["meta"]
    print(
        f"wrote {os.path.abspath(args.out)} "
        f"(git {meta['git_sha']}, python {meta['python']}, "
        f"{meta['timestamp']})"
    )

    if args.check:
        speedup = report["scenarios"]["solve_heavy"]["speedup"]
        if speedup is None or speedup < 2.0:
            print(
                f"FAIL: solve_heavy speedup {speedup}x is below the 2x bar",
                file=sys.stderr,
            )
            return 1
        print(f"OK: solve_heavy speedup {speedup}x >= 2x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
