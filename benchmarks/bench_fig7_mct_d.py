"""Fig. 7 table, Mct / Template D with Mspec' (§6.5).

Paper numbers (478 programs): 0/47800 counterexamples — Cortex-A53 does
not perform straight-line speculation past unconditional *direct*
branches, supporting ARM's claim.

Expected shape: experiments run (the refinement produces test pairs that
differ in the dead code behind the branch) but none distinguish.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import straightline_campaign


def bench_fig7_mct_template_d(campaigns):
    stats = campaigns.run(
        straightline_campaign(
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=107,
        )
    )
    campaigns.report("Fig. 7 / Mct Template D with Mspec' (straight-line)")
    assert stats.counterexamples == 0
    assert stats.experiments > 0
