"""§6.4 / Fig. 6: the SiSCLoak attacks as end-to-end benchmarks.

Measures the full recover() protocol (train, Flush+Reload leak, baseline
calibration, decode) for both Fig. 6 victims and asserts the secret is
recovered — the paper's "real attack that recovers bits of x2".
"""

from repro.attacks.siscloak import (
    A_BASE,
    LINE,
    SECRET_FLAG,
    SiSCloakAttack,
    siscloak_classification_program,
    siscloak_v1_program,
)


def bench_siscloak_v1(benchmark):
    size = 4 * 8
    secret = 37 * LINE
    memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
    memory[A_BASE + size] = secret

    def attack_once():
        attack = SiSCloakAttack(siscloak_v1_program(), memory)
        return attack.recover(
            benign_regs={"x0": 8, "x1": size},
            malicious_regs={"x0": size, "x1": size},
            secret=secret,
        )

    outcome = benchmark(attack_once)
    benchmark.extra_info["recovered"] = outcome.recovered
    benchmark.extra_info["probes"] = outcome.probes
    assert outcome.success


def bench_siscloak_classification(benchmark):
    secret = SECRET_FLAG | (29 * LINE)
    memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
    memory[A_BASE + 4 * 8] = secret

    def attack_once():
        attack = SiSCloakAttack(
            siscloak_classification_program(),
            memory,
            candidate_offsets=[SECRET_FLAG | (i * LINE) for i in range(64)],
        )
        return attack.recover(
            benign_regs={"x0": 8},
            malicious_regs={"x0": 4 * 8},
            secret=secret,
        )

    outcome = benchmark(attack_once)
    benchmark.extra_info["recovered"] = outcome.recovered
    assert outcome.success
