"""Fig. 7 table, Mspec1 columns (§6.5): the scope of speculation.

Paper numbers:

* Template C (8 programs, Mspec refinement): **0** counterexamples — the
  result of a transient load is never forwarded, so the causally dependent
  second load never issues.
* Template B (915 programs): 206/36600 (~0.6%) counterexamples, T.T.C.
  ~4.5 h — two *independent* transient loads can both issue (when the
  first hits in the cache).

Expected shape: none on C; few-but-present on B.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import mspec1_campaign


def bench_fig7_mspec1_template_c(campaigns):
    stats = campaigns.run(
        mspec1_campaign(
            "C",
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=106,
        )
    )
    campaigns.report("Fig. 7 / Mspec1 Template C (dependent transient loads)")
    assert stats.counterexamples == 0
    assert stats.experiments > 0


def bench_fig7_mspec1_template_b(campaigns):
    stats = campaigns.run(
        mspec1_campaign(
            "B",
            num_programs=2 * BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=106,
        )
    )
    campaigns.report("Fig. 7 / Mspec1 Template B (independent transient loads)")
    assert stats.counterexamples > 0
    assert stats.counterexample_rate < 0.25
