"""Table 1, Mpart page-aligned columns (§6.2).

Paper: with the attacker region page aligned (sets 64..127), neither
unguided testing (0/12860) nor refinement (0/17000) finds a counterexample
— the prefetcher stops at the 4 KiB page boundary.  Expected shape: zero
counterexamples in both columns.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import mpart_campaign


def bench_table1_mpart_page_aligned(campaigns):
    unref = campaigns.run_unmeasured(
        mpart_campaign(
            refined=False,
            page_aligned=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=102,
        )
    )
    refined = campaigns.run(
        mpart_campaign(
            refined=True,
            page_aligned=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=102,
        )
    )
    campaigns.report("Table 1 / Mpart page-aligned (prefetch stops at page)")

    assert unref.counterexamples == 0
    assert refined.counterexamples == 0
    assert refined.experiments > 0
