"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Forwarding**: allowing speculative-result forwarding (an out-of-order
  core instead of the A53) must create Mspec1/Template C counterexamples —
  the dependent transient load then issues.
* **Page-boundary stop**: disabling the prefetcher's page-boundary stop
  must break the page-aligned cache-coloring defence of §6.2.
* **Per-path-pair relation split (§5.4)**: solving one small conjunction
  per path pair versus the monolithic Eq. 1 formula.
* **Projection optimisation (§5.1)**: one symbolic execution of a
  tagged-observation program versus two runs (one per model).
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.core.probes import add_address_probes
from repro.core.relation import RelationSynthesizer
from repro.exps import mpart_campaign, mspec1_campaign
from repro.gen.templates import TemplateB
from repro.hw.core import CoreConfig
from repro.hw.prefetcher import PrefetcherConfig
from repro.isa.lifter import lift
from repro.obs.models import MctModel, MspecModel
from repro.smt.solver import ModelFinder, SolverConfig
from repro.symbolic.executor import execute
from repro.utils.rng import SplittableRandom


def bench_ablation_forwarding(campaigns):
    """Mspec1/C finds counterexamples once transient results forward."""
    forwarding_core = CoreConfig(forward_speculative_results=True)
    baseline = campaigns.run_unmeasured(
        mspec1_campaign(
            "C",
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=108,
        )
    )
    forwarding = campaigns.run(
        mspec1_campaign(
            "C",
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=108,
            core=forwarding_core,
        )
    )
    campaigns.report("Ablation: speculative-result forwarding (Mspec1 / C)")
    assert baseline.counterexamples == 0
    assert forwarding.counterexamples > 0


def bench_ablation_page_boundary(campaigns):
    """Page-aligned coloring falls once the prefetcher crosses pages."""
    crossing_core = CoreConfig(prefetcher=PrefetcherConfig(page_size=0))
    baseline = campaigns.run_unmeasured(
        mpart_campaign(
            refined=True,
            page_aligned=True,
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=109,
            noise_rate=0.0,
        )
    )
    crossing = campaigns.run(
        mpart_campaign(
            refined=True,
            page_aligned=True,
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=109,
            noise_rate=0.0,
            core=crossing_core,
        )
    )
    campaigns.report("Ablation: prefetcher page-boundary stop (Mpart aligned)")
    assert baseline.counterexamples == 0
    assert crossing.counterexamples > 0


def _template_b_result(seed=42):
    asm = TemplateB().generate(SplittableRandom(seed)).asm
    program = add_address_probes(MctModel().augment(lift(asm)))
    return execute(program)


def bench_ablation_path_split_per_pair(benchmark):
    """§5.4 split: solve one small conjunction per path pair."""
    result = _template_b_result()
    synthesizer = RelationSynthesizer(result, refinement=False)
    pairs = synthesizer.feasible_pairs()

    def solve_pairs():
        models = 0
        for index in range(12):
            pair = pairs[index % len(pairs)]
            finder = ModelFinder(SolverConfig(), SplittableRandom(index))
            if finder.solve(list(pair.equivalence_constraints())) is not None:
                models += 1
        return models

    models = benchmark(solve_pairs)
    benchmark.extra_info["models_found"] = models
    assert models > 0


def bench_ablation_path_split_monolithic(benchmark):
    """The naive alternative: solve the whole Eq. 1 relation at once."""
    result = _template_b_result()
    synthesizer = RelationSynthesizer(result, refinement=False)
    relation = synthesizer.synthesize_full()

    def solve_monolithic():
        models = 0
        for index in range(12):
            finder = ModelFinder(SolverConfig(), SplittableRandom(index))
            if finder.solve([relation]) is not None:
                models += 1
        return models

    models = benchmark(solve_monolithic)
    benchmark.extra_info["models_found"] = models


def bench_ablation_projection_combined(benchmark):
    """§5.1: one symbolic execution of the tagged combined program."""
    asm = TemplateB().generate(SplittableRandom(43)).asm

    def run_combined():
        return execute(MspecModel().augment(lift(asm)))

    result = benchmark(run_combined)
    assert len(result) >= 1


def bench_ablation_projection_two_runs(benchmark):
    """The naive alternative: symbolically execute each model separately."""
    asm = TemplateB().generate(SplittableRandom(43)).asm

    def run_twice():
        base = execute(MctModel().augment(lift(asm)))
        refined = execute(MspecModel().augment(lift(asm)))
        return base, refined

    base, refined = benchmark(run_twice)
    assert len(base) == len(refined)
