"""Table 1, Mct Template A columns (§6.3).

Paper numbers (655/652 programs, ~40 tests each):

===============  ========  ===========
metric           no-ref    Mspec
===============  ========  ===========
Prog. w. Count.  6         626
Counterexamples  6/26200   12462/25737
T.T.C.           102600 s  13 s
===============  ========  ===========

Expected shape: refinement finds counterexamples for (nearly) every
program at a rate orders of magnitude above unguided testing — the
SiSCLoak discovery setting.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import mct_campaign


def bench_table1_mct_template_a(campaigns):
    unref = campaigns.run_unmeasured(
        mct_campaign(
            "A",
            refined=False,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=103,
        )
    )
    refined = campaigns.run(
        mct_campaign(
            "A",
            refined=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=103,
        )
    )
    campaigns.report("Table 1 / Mct Template A (speculative leakage)")

    assert refined.counterexample_rate > 0.5
    assert refined.programs_with_counterexamples == refined.programs
    assert unref.counterexample_rate < 0.1
    assert refined.counterexamples > 10 * max(unref.counterexamples, 1)
