"""Table 1, Mpart columns: cache partitioning vs. prefetching (§6.2).

Paper numbers (450 programs, ~40 tests each):

===============  =======  =========
metric           no-ref   Mpart'
===============  =======  =========
Prog. w. Count.  21       89
Counterexamples  21/13752 447/18000
T.T.C.           8892 s   2070 s
===============  =======  =========

Expected shape: refinement yields an order of magnitude more
counterexamples (paper: ~20x rate) and ~4x more programs with
counterexamples.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import mpart_campaign


def bench_table1_mpart(campaigns):
    unref = campaigns.run_unmeasured(
        mpart_campaign(
            refined=False,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=101,
        )
    )
    refined = campaigns.run(
        mpart_campaign(
            refined=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=101,
        )
    )
    campaigns.report("Table 1 / Mpart (prefetching vs. cache partitioning)")

    # Shape assertions (A.6.1): refinement wins decisively.
    assert refined.counterexamples > 0
    assert refined.counterexample_rate > unref.counterexample_rate
    assert (
        refined.programs_with_counterexamples
        >= unref.programs_with_counterexamples
    )
