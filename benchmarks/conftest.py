"""Benchmark fixtures (see _harness for the shared runner)."""

import pytest

from _harness import CampaignRunner


@pytest.fixture
def campaigns(benchmark):
    return CampaignRunner(benchmark)
