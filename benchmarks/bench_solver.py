#!/usr/bin/env python
"""Solver regression watch: stamped microbenches + end-to-end coverage solve.

The observatory's CI leg (ISSUE 10).  Four scenarios, smallest first:

* ``prepare``         — constraint preparation (flatten/absorb/compile)
  over the template corpus, cold then memoized,
* ``solve_prepared``  — the stochastic search on prepared satisfiable
  systems, the per-query hot path,
* ``restart_exhaust`` — a semantically unsatisfiable system (disjoint
  range bounds) the search must run to restart exhaustion on: the
  worst-case query shape coverage pinning produces constantly,
* ``solve_coverage``  — end-to-end test-case generation under cache-set
  coverage pinning, profiled by the solver observatory
  (:mod:`repro.telemetry.solver`), which supplies the deterministic
  query/restart/sat counters the regression gate compares exactly.

Wall times vary across machines, so ``--compare`` gates them only with a
generous ratio tolerance (default 4x); the profiled counters are exact
reproductions of the search's decisions (the RNG is a pure-Python
splittable generator) and must match the baseline bit-for-bit.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver.py            # full run
    PYTHONPATH=src python benchmarks/bench_solver.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_solver.py --smoke \
        --compare benchmarks/BENCH_solver_baseline.json         # CI gate

Emits ``BENCH_solver.json`` (``--out``), schema-checked by
``python -m repro.bench_schema``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bir import expr as E
from repro.core.coverage import MlineCoverage
from repro.core.testgen import TestCaseGenerator, TestGenConfig
from repro.gen.templates import TemplateB, TemplateC
from repro.obs.base import AttackerRegion
from repro.obs.models import MspecModel
from repro.smt.solver import ModelFinder, SolverConfig
from repro.telemetry import solver as solver_profile
from repro.telemetry.export import stamp
from repro.utils.rng import SplittableRandom

#: Wall-time ratio the gate tolerates (cross-machine CI noise).
DEFAULT_TIME_RATIO = 4.0


def _generate_programs(count, seed=2024):
    rng = SplittableRandom(seed)
    templates = [TemplateB(), TemplateC()]
    return [
        templates[index % len(templates)]
        .generate(rng.split(f"prog{index}"))
        .asm
        for index in range(count)
    ]


def _pair_constraint_systems(programs):
    """Per-path constraint systems from executed templates: what a real
    campaign prepares before every query."""
    model = MspecModel()
    systems = []
    for asm in programs:
        for path in TestCaseGenerator(asm, model).result:
            system = list(path.path_condition)
            for obs in path.observations:
                system.append(obs.guard)
            if system:
                systems.append(system)
    return systems


def _bench_prepare(systems, iterations):
    finder = ModelFinder(SolverConfig())
    started = time.perf_counter()
    for _ in range(iterations):
        for system in systems:
            finder.prepare(system)
    return {
        "seconds": round(time.perf_counter() - started, 6),
        "iterations": iterations,
        "systems": len(systems),
    }


def _bench_solve_prepared(systems, iterations):
    finder = ModelFinder(SolverConfig())
    prepared = [finder.prepare(system) for system in systems]
    sat = 0
    started = time.perf_counter()
    for _ in range(iterations):
        for item in prepared:
            if finder.solve_prepared(item) is not None:
                sat += 1
    return {
        "seconds": round(time.perf_counter() - started, 6),
        "iterations": iterations,
        "sat": sat,
    }


def _bench_restart_exhaust(iterations):
    # Disjoint range bounds: semantically unsatisfiable, syntactically
    # innocent — preparation cannot prove it, so every solve runs the full
    # restart budget and exhausts.
    finder = ModelFinder(SolverConfig())
    x = E.var("x0")
    system = [
        E.ult(x, E.const(4)),
        E.ult(E.const(100), E.add(x, E.var("x1"))),
        E.ult(E.var("x1"), E.const(4)),
    ]
    prepared = finder.prepare(system)
    exhausted = 0
    started = time.perf_counter()
    for _ in range(iterations):
        if finder.solve_prepared(prepared) is None:
            exhausted += 1
    return {
        "seconds": round(time.perf_counter() - started, 6),
        "iterations": iterations,
        "exhausted": exhausted,
    }


def _bench_solve_coverage(programs, tests_per_program):
    """The end-to-end scenario the observatory attributes: coverage-pinned
    generation, one named coverage class per path pair."""
    model = MspecModel()
    config = TestGenConfig(solver=SolverConfig())
    rng = SplittableRandom(7)
    coverage = MlineCoverage(AttackerRegion(61, 127))
    generated = 0
    started = time.perf_counter()
    for index, asm in enumerate(programs):
        generator = TestCaseGenerator(
            asm,
            model,
            config=config,
            rng=rng.split(f"gen{index}"),
            coverage=coverage,
        )
        for _ in range(tests_per_program):
            if generator.generate() is not None:
                generated += 1
    return {
        "seconds": round(time.perf_counter() - started, 6),
        "tests_requested": len(programs) * tests_per_program,
        "generated": generated,
    }


def run(smoke):
    programs_count = 2 if smoke else 8
    prepare_iterations = 5 if smoke else 100
    solve_iterations = 2 if smoke else 20
    exhaust_iterations = 2 if smoke else 25
    coverage_tests = 3 if smoke else 16

    programs = _generate_programs(programs_count)
    systems = _pair_constraint_systems(programs)

    solver_profile.set_enabled(True)
    solver_profile.drain()
    try:
        scenarios = {
            "prepare": _bench_prepare(systems, prepare_iterations),
            "solve_prepared": _bench_solve_prepared(
                systems, solve_iterations
            ),
            "restart_exhaust": _bench_restart_exhaust(exhaust_iterations),
            "solve_coverage": _bench_solve_coverage(
                programs, coverage_tests
            ),
        }
        solver_doc = solver_profile.drain()
    finally:
        solver_profile.set_enabled(False)

    from repro.telemetry.solver import doc_totals

    totals = doc_totals(solver_doc)
    counters = {
        "queries": int(totals["queries"]),
        "restarts": int(totals["restarts"]),
        "sat": int(totals["sat"]),
        "exhausted": int(totals["exhausted"]),
        "coverage_generated": int(scenarios["solve_coverage"]["generated"]),
    }
    return {
        "bench": "solver",
        "meta": stamp(),
        "smoke": smoke,
        "params": {
            "programs": programs_count,
            "systems": len(systems),
            "prepare_iterations": prepare_iterations,
            "solve_iterations": solve_iterations,
            "exhaust_iterations": exhaust_iterations,
            "coverage_tests_per_program": coverage_tests,
        },
        "scenarios": scenarios,
        "counters": counters,
        "solver": solver_doc,
    }


def compare(report, baseline, time_ratio):
    """Gate a fresh report against a recorded baseline.

    Returns a list of violation strings (empty = pass).  Counters gate
    exactly; per-scenario seconds gate on the ratio tolerance.
    """
    violations = []
    if report.get("params") != baseline.get("params"):
        return [
            "params differ from baseline "
            f"({report.get('params')} vs {baseline.get('params')}); "
            "regenerate the baseline at the same scale"
        ]
    base_counters = baseline.get("counters") or {}
    for name, value in (report.get("counters") or {}).items():
        if name in base_counters and value != base_counters[name]:
            violations.append(
                f"counter {name}: {base_counters[name]} -> {value} "
                "(deterministic counters must match the baseline exactly)"
            )
    base_scenarios = baseline.get("scenarios") or {}
    for name, row in (report.get("scenarios") or {}).items():
        base_row = base_scenarios.get(name) or {}
        base_s = base_row.get("seconds")
        current_s = row.get("seconds")
        if not base_s or current_s is None:
            continue
        if current_s > base_s * time_ratio:
            violations.append(
                f"scenario {name}: {current_s:.4f}s exceeds "
                f"{time_ratio:.1f}x the baseline {base_s:.4f}s"
            )
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads (CI regression canary)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_solver.json",
        ),
        help="output JSON path (default: repo-root BENCH_solver.json)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="gate against a recorded BENCH_solver report; exit 1 on "
        "regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TIME_RATIO,
        help=f"wall-time ratio allowed vs the baseline "
        f"(default {DEFAULT_TIME_RATIO}x; counters always gate exactly)",
    )
    args = parser.parse_args(argv)

    report = run(smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in report["scenarios"])
    for name, row in report["scenarios"].items():
        extra = ", ".join(
            f"{key}={value}"
            for key, value in sorted(row.items())
            if key != "seconds"
        )
        print(f"{name.ljust(width)}  {row['seconds']:.4f}s  ({extra})")
    counters = report["counters"]
    print(
        "profiled: "
        + ", ".join(f"{name}={counters[name]}" for name in sorted(counters))
    )
    meta = report["meta"]
    print(
        f"wrote {os.path.abspath(args.out)} "
        f"(git {meta['git_sha']}, python {meta['python']}, "
        f"{meta['timestamp']})"
    )

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        violations = compare(report, baseline, args.tolerance)
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        print(f"OK: no regression vs {args.compare}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
