"""Fig. 7 table, Mct / Template C columns (§6.5).

Paper numbers (8 programs, 1000 tests each): unguided finds 0/8000;
with Mspec refinement 3423/8000 (~42%) are counterexamples, T.T.C. 21 s.
"These are leaking programs that cannot be detected without refinement":
Mct places no constraints on the branch-body registers when the branch is
not taken.

Expected shape: 0 unguided; a large fraction with refinement.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import mct_campaign


def bench_fig7_mct_template_c(campaigns):
    unref = campaigns.run_unmeasured(
        mct_campaign(
            "C",
            refined=False,
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=105,
        )
    )
    refined = campaigns.run(
        mct_campaign(
            "C",
            refined=True,
            num_programs=max(4, BENCH_PROGRAMS // 2),
            tests_per_program=BENCH_TESTS,
            seed=105,
        )
    )
    campaigns.report("Fig. 7 / Mct Template C (Spectre-PHT shape)")

    # Paper: 0/8000 unguided; allow a sub-5% residue from the solver's
    # exploration phase on the dependent-load well-formedness constraints.
    assert unref.counterexample_rate < 0.05
    assert refined.counterexample_rate > 0.25
    assert refined.counterexamples > 10 * max(unref.counterexamples, 1)
