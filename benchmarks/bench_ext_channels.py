"""Extension benchmarks: the §2.3 new-channel campaigns.

Not a paper table — these exercise the extension API the paper describes
("to analyze a new channel ... implement a new module for augmenting input
programs ... and extend the test case executor"): the TLB channel and the
variable-time-arithmetic timing channel, each with and without refinement.
"""

from _harness import BENCH_PROGRAMS, BENCH_TESTS

from repro.exps import timing_campaign, tlb_campaign


def bench_ext_tlb_channel(campaigns):
    unref = campaigns.run_unmeasured(
        tlb_campaign(
            refined=False,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=110,
        )
    )
    refined = campaigns.run(
        tlb_campaign(
            refined=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=110,
        )
    )
    campaigns.report("Extension: set-index model vs. the TLB channel")
    assert refined.counterexample_rate > 0.5
    assert unref.counterexample_rate < 0.1


def bench_ext_timing_channel(campaigns):
    unref = campaigns.run_unmeasured(
        timing_campaign(
            refined=False,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=111,
        )
    )
    refined = campaigns.run(
        timing_campaign(
            refined=True,
            num_programs=BENCH_PROGRAMS,
            tests_per_program=BENCH_TESTS,
            seed=111,
        )
    )
    campaigns.report(
        "Extension: pc-security model vs. variable-time multiply"
    )
    assert refined.counterexample_rate > 0.5
    assert unref.counterexample_rate < 0.1
